// The workload layer (src/workload/): leader-side request queue admission,
// open/closed-loop client fleets on the typed event lanes, adaptive
// batching in TreeRsm, re-routing after a target-replica crash, and the
// thread-count determinism of workload-driven sweeps.
#include <gtest/gtest.h>

#include "src/api/deployment.h"
#include "src/runner/runner.h"
#include "src/workload/request_queue.h"

namespace optilog {
namespace {

// --- RequestQueue ------------------------------------------------------------

TEST(RequestQueueTest, AdmissionDedupAndOverflow) {
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.max_queue = 3;
  RequestQueue q(policy);

  EXPECT_EQ(q.Push({7, 0, 0, {}}, 10), RequestQueue::Admit::kAccepted);
  EXPECT_EQ(q.Push({7, 0, 0, {}}, 11), RequestQueue::Admit::kDuplicate);  // retry
  EXPECT_EQ(q.Push({7, 1, 0, {}}, 12), RequestQueue::Admit::kAccepted);
  EXPECT_EQ(q.Push({8, 0, 0, {}}, 13), RequestQueue::Admit::kAccepted);
  EXPECT_EQ(q.Push({8, 1, 0, {}}, 14), RequestQueue::Admit::kDropped);  // full
  EXPECT_EQ(q.accepted(), 3u);
  EXPECT_EQ(q.duplicates(), 1u);
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.peak_depth(), 3u);
  EXPECT_EQ(q.front_enqueued_at(), 10);

  // FIFO pop, capped at max_batch; the caller names the trigger.
  const auto first = q.PopBatch(20, BatchTrigger::kSize);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].client, 7u);
  EXPECT_EQ(first[0].request_id, 0u);
  EXPECT_EQ(first[1].request_id, 1u);
  EXPECT_EQ(q.batches_size_triggered(), 1u);
  const auto second = q.PopBatch(21, BatchTrigger::kDeadline);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(q.batches_deadline_triggered(), 1u);
  EXPECT_EQ(q.batches_idle_triggered(), 0u);
  EXPECT_TRUE(q.empty());

  // A duplicate of a popped (still-windowed) request stays rejected.
  EXPECT_EQ(q.Push({7, 0, 0, {}}, 30), RequestQueue::Admit::kDuplicate);
}

TEST(RequestQueueTest, RequeuePreservesOrderWithoutRecounting) {
  RequestQueue q(BatchPolicy{});
  q.Push({1, 0, 0, {}}, 0);
  q.Push({1, 1, 0, {}}, 1);
  q.Push({1, 2, 0, {}}, 2);
  auto batch = q.PopBatch(5, BatchTrigger::kDeadline);
  ASSERT_EQ(batch.size(), 3u);
  // The round failed: the batch returns to the FRONT, oldest first, and
  // `accepted` does not move (committed at most once per admission).
  q.Push({1, 3, 0, {}}, 6);
  q.Requeue(std::move(batch), 7);
  EXPECT_EQ(q.accepted(), 4u);
  const auto again = q.PopBatch(8, BatchTrigger::kDeadline);
  ASSERT_EQ(again.size(), 4u);
  EXPECT_EQ(again[0].request_id, 0u);
  EXPECT_EQ(again[1].request_id, 1u);
  EXPECT_EQ(again[2].request_id, 2u);
  EXPECT_EQ(again[3].request_id, 3u);
}

// --- Closed-loop fleets on the tree family ------------------------------------

std::unique_ptr<Deployment> KauriWithWorkload(WorkloadOptions w,
                                              TreeRsmOptions topts = {}) {
  return Deployment::Builder()
      .WithGeo(Europe21())
      .WithProtocol(Protocol::kKauri)
      .WithSeed(9)
      .WithTreeOptions(topts)
      .WithWorkload(w)
      .Build();
}

TEST(WorkloadTree, ClosedLoopServesRequestsOnTypedLanesOnly) {
  WorkloadOptions w;
  w.clients = 8;
  w.think_time = 20 * kMsec;
  w.batch.max_batch = 4;
  w.batch.max_delay = 10 * kMsec;
  auto d = KauriWithWorkload(w);
  d->Start();
  d->RunUntil(20 * kSec);

  const MetricsReport m = d->Metrics();
  EXPECT_TRUE(m.workload.enabled);
  EXPECT_GT(m.committed, 20u);
  EXPECT_GT(m.workload.requests_completed, 100u);
  EXPECT_LE(m.workload.requests_completed, m.workload.requests_sent);
  // Every committed command is an admitted client request (no self-driving,
  // no double-commits), and every admitted request came from the fleet. The
  // run stops mid-flight, so commits may lead completions by at most the
  // fleet's outstanding window (replies still on the wire).
  EXPECT_GE(m.total_commands, m.workload.requests_completed);
  EXPECT_LE(m.total_commands, m.workload.requests_completed + w.clients);
  EXPECT_LE(m.total_commands, m.workload.requests_accepted);
  // Honest end-to-end latency: a Europe-wide tree round trip, not zero.
  EXPECT_GT(m.workload.latency_p50_ms, 10.0);
  EXPECT_GE(m.workload.latency_p99_ms, m.workload.latency_p50_ms);
  EXPECT_GT(m.workload.batches_size_triggered +
                m.workload.batches_deadline_triggered,
            0u);
  // The whole client path (arrivals, requests, replies, think timers) rides
  // the typed lanes: zero closures, as in every protocol hot path.
  EXPECT_EQ(m.event_core.closure_events, 0u);
  EXPECT_GT(m.event_core.typed_timers, 0u);
}

TEST(WorkloadTree, ClosedLoopClientCountSaturatesThroughputMonotonically) {
  // Capacity is bounded by max_batch per round with pipeline depth 1: more
  // closed-loop clients raise throughput until the batch cap saturates it,
  // after which extra clients only buy queueing delay (p99 grows).
  TreeRsmOptions topts;
  topts.pipeline_depth = 1;
  double ops[3];
  double p99[3];
  const uint32_t client_counts[3] = {4, 32, 128};
  for (int i = 0; i < 3; ++i) {
    WorkloadOptions w;
    w.clients = client_counts[i];
    w.think_time = 0;
    w.batch.max_batch = 16;
    w.batch.max_delay = 5 * kMsec;
    auto d = KauriWithWorkload(w, topts);
    d->Start();
    d->RunUntil(20 * kSec);
    const MetricsReport m = d->Metrics();
    ops[i] = m.MeanOps(1, 20);
    p99[i] = m.workload.latency_p99_ms;
    EXPECT_GT(m.workload.requests_completed, 0u) << client_counts[i];
  }
  // Below saturation: more clients, more throughput.
  EXPECT_GT(ops[1], ops[0] * 1.5);
  // At saturation: throughput monotone (never collapses) but flat...
  EXPECT_GE(ops[2], ops[1] * 0.95);
  EXPECT_LE(ops[2], ops[1] * 1.25);
  // ...while the extra clients pay in queueing delay.
  EXPECT_GT(p99[2], p99[1] * 1.5);
}

// --- Re-routing after the target replica crashes -------------------------------

TEST(WorkloadTree, CrashedTargetReplicaReroutesWithoutDoubleCounting) {
  // Clients target the root; the root crashes mid-run. The OptiLog loop
  // elects a new tree while client retries probe other replicas, which
  // forward to the new root. The leader-side dedup window guarantees a
  // re-sent request is never committed twice.
  WorkloadOptions w;
  w.clients = 10;
  w.think_time = 10 * kMsec;
  w.retry_timeout = 500 * kMsec;  // several probes fit inside the recovery
  w.batch.max_batch = 32;
  w.batch.max_delay = 10 * kMsec;
  TreeRsmOptions topts;
  topts.pipeline_depth = 2;

  ReplicaId first_root = kNoReplica;
  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithProtocol(Protocol::kOptiTree)
               .WithSeed(11)
               .WithInitialSearch(AnnealingParams::ForBudget(2000))
               .WithTreeOptions(topts)
               .WithWorkload(w)
               .WithOptiLogReconfig(/*search_window=*/500 * kMsec)
               .WithFaults([&first_root](Deployment& dep) {
                 first_root = dep.tree().topology().root();
                 dep.faults().Mutable(first_root).crash_at = 10 * kSec;
               })
               .Build();
  d->Start();
  d->RunUntil(40 * kSec);

  const MetricsReport m = d->Metrics();
  ASSERT_NE(d->tree().topology().root(), first_root);
  EXPECT_GE(m.reconfigurations, 1u);
  // Clients noticed the dead target and re-routed.
  EXPECT_GT(m.workload.requests_retried, 0u);
  EXPECT_GT(m.workload.requests_deduped, 0u);  // retries caught by the window
  // Service resumed on the new root: completions recorded after recovery.
  uint64_t completed_after_crash = 0;
  for (uint32_t c = 0; c < w.clients; ++c) {
    for (const ClientSample& s : d->tree().fleet()->client(c).samples()) {
      if (s.at > 15 * kSec) {
        ++completed_after_crash;
      }
    }
  }
  EXPECT_GT(completed_after_crash, 50u);
  // No double counting: every committed command maps to one admitted
  // request, and commits never exceed admissions even with retries and
  // requeued batches in play.
  EXPECT_LE(m.total_commands, m.workload.requests_accepted);
  EXPECT_GE(m.total_commands, m.workload.requests_completed);
  EXPECT_EQ(m.event_core.closure_events, 0u);
}

// --- PBFT family on the shared layer ------------------------------------------

TEST(WorkloadPbft, CustomFleetOverridesLegacyClosedLoop) {
  PbftOptions popts;
  popts.optimize_at = 5 * kSec;
  WorkloadOptions w;
  w.clients = 6;  // fewer clients than replicas
  w.arrival = ArrivalProcess::kOpenRate;
  w.rate_per_client = 10.0;
  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithProtocol(Protocol::kPbft)
               .WithPbftOptions(popts)
               .WithWorkload(w)
               .Build();
  d->Start();
  d->RunUntil(10 * kSec);
  const MetricsReport m = d->Metrics();
  EXPECT_EQ(d->pbft().fleet().size(), 6u);
  // ~6 clients x 10 req/s x 10 s, minus the tail in flight.
  EXPECT_GT(m.workload.requests_sent, 500u);
  EXPECT_GT(m.workload.requests_completed, 450u);
  EXPECT_GT(m.workload.latency_p50_ms, 1.0);
  // PBFT proposes on idle, not on a deadline timer.
  EXPECT_GT(m.workload.batches_idle_triggered, 0u);
  EXPECT_EQ(m.workload.batches_deadline_triggered, 0u);
  EXPECT_EQ(m.event_core.closure_events, 0u);
}

// --- Determinism: workload sweeps are thread-count invariant -------------------

Scenario PoissonMiniSweep() {
  Scenario s;
  s.name = "test_workload_poisson_sweep";
  s.columns = {"rate", "seed", "completed", "p99_ms"};
  s.grid = {{"rate", {"50", "200"}}, {"seed", {"3", "4"}}};
  WorkloadOptions base;
  base.clients = 6;
  base.arrival = ArrivalProcess::kOpenPoisson;
  base.batch.max_batch = 32;
  base.batch.max_delay = 10 * kMsec;
  s.run = [base](const Params& p) {
    WorkloadOptions w = base;
    w.rate_per_client = p.GetDouble("rate") / 6.0;
    auto d = Deployment::Builder()
                 .WithGeo(Europe21())
                 .WithProtocol(Protocol::kKauri)
                 .WithSeed(static_cast<uint64_t>(p.GetInt("seed")))
                 .WithWorkload(w)
                 .Build();
    d->Start();
    d->RunUntil(8 * kSec);
    const MetricsReport m = d->Metrics();
    PointResult pr;
    pr.rows.push_back({p.Get("rate"), p.Get("seed"),
                       std::to_string(m.workload.requests_completed),
                       FormatDouble(m.workload.latency_p99_ms)});
    pr.metrics = {
        {"completed", static_cast<double>(m.workload.requests_completed)},
        {"p99_ms", m.workload.latency_p99_ms}};
    pr.event_core = m.event_core;
    pr.event_core.wall_seconds = 0.0;
    pr.digest = MetricsFingerprint(m);
    return pr;
  };
  return s;
}

TEST(WorkloadDeterminism, OpenLoopPoissonSweepIsThreadCountInvariant) {
  const Scenario s = PoissonMiniSweep();
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const ScenarioRunResult a = RunScenario(s, serial);
  const ScenarioRunResult b = RunScenario(s, parallel);
  EXPECT_EQ(DeterministicJson(a), DeterministicJson(b));
  ASSERT_EQ(a.points.size(), 4u);
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].digest, b.points[i].digest);
    // The Poisson arrival path is closure-free like everything else.
    EXPECT_EQ(a.points[i].event_core.closure_events, 0u);
    EXPECT_GT(a.points[i].metrics[0].second, 0.0);
  }
  // Distinct seeds draw distinct arrival processes.
  EXPECT_NE(a.points[0].digest, a.points[1].digest);
}

}  // namespace
}  // namespace optilog
