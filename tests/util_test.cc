#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/bytes.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace optilog {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroAndOneReturnZero) {
  Rng rng(7);
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleIndices(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t idx : sample) {
      EXPECT_LT(idx, 20u);
    }
  }
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng rng(9);
  EXPECT_EQ(rng.SampleIndices(3, 10).size(), 3u);
}

TEST(Rng, ForkIndependent) {
  Rng parent(123);
  Rng child = parent.Fork();
  // Child stream should not mirror parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += parent.Next() == child.Next();
  }
  EXPECT_LT(same, 3);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  RunningStat small, large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    small.Add(rng.Uniform());
  }
  for (int i = 0; i < 1000; ++i) {
    large.Add(rng.Uniform());
  }
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.ci95(), 0.0);
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({5}, 99), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 100), 3.0);
}

TEST(Percentile, ClampsOutOfRangePct) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, -10), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 250), 3.0);
}

TEST(Percentile, SortedQueriesShareOneSort) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  std::sort(xs.begin(), xs.end());
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(SortedPercentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(SortedPercentile({}, 50), 0.0);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketResolution) {
  // Uniform 1..10'000 ms (recorded in us): every percentile must land
  // within the ~3% relative quantization of the log buckets.
  LatencyHistogram h;
  for (uint64_t ms = 1; ms <= 10'000; ++ms) {
    h.RecordUs(ms * 1000);
  }
  EXPECT_EQ(h.count(), 10'000u);
  EXPECT_DOUBLE_EQ(h.max_ms(), 10'000.0);
  for (double pct : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = pct / 100.0 * 10'000.0;
    EXPECT_NEAR(h.PercentileMs(pct), exact, exact * 0.04) << pct;
  }
  // Out-of-range pct clamps instead of misbehaving.
  EXPECT_NEAR(h.PercentileMs(1000.0), 10'000.0, 10'000.0 * 0.04);
  EXPECT_GT(h.PercentileMs(-5.0), 0.0);
}

TEST(LatencyHistogramTest, BoundedMemoryAtMillionsOfSamples) {
  // The histogram is a fixed array: sizeof is a compile-time constant and
  // recording millions of samples allocates nothing.
  static_assert(sizeof(LatencyHistogram) < 32 * 1024);
  LatencyHistogram h;
  for (int i = 0; i < 2'000'000; ++i) {
    h.RecordUs(static_cast<uint64_t>(i) % 1'000'000);
  }
  EXPECT_EQ(h.count(), 2'000'000u);
  const double exact_p50 = 500.0;  // uniform over [0, 1000) ms
  EXPECT_NEAR(h.PercentileMs(50.0), exact_p50, exact_p50 * 0.04);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  h.RecordUs(0);
  h.RecordUs(7);
  h.RecordUs(31);  // the last exact unit bucket (2^5 - 1)
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.PercentileMs(100.0), 0.0315, 0.0005);
  EXPECT_LT(h.PercentileMs(0.0), 0.001);
}

TEST(Bytes, RoundTripIntegers) {
  Bytes buf;
  ByteWriter w(&buf);
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.F64(3.14159);
  ByteReader r(buf);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159);
  EXPECT_TRUE(r.Done());
}

TEST(Bytes, RoundTripBlobsAndStrings) {
  Bytes buf;
  ByteWriter w(&buf);
  w.Str("hello");
  w.Blob(Bytes{1, 2, 3});
  w.Str("");
  ByteReader r(buf);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.Done());
}

TEST(Bytes, SizeAccounting) {
  Bytes buf;
  ByteWriter w(&buf);
  w.U32(1);
  EXPECT_EQ(w.size(), 4u);
  w.Str("abc");
  EXPECT_EQ(w.size(), 4u + 4u + 3u);
}

class RngSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSweep, BelowIsRoughlyUniform) {
  Rng rng(GetParam());
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.Below(bound)];
  }
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], trials / static_cast<int>(bound), 300)
        << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSweep, ::testing::Values(1, 2, 42, 1234, 99999));

}  // namespace
}  // namespace optilog
