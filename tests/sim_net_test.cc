#include <gtest/gtest.h>

#include "src/net/fault_model.h"
#include "src/net/geo.h"
#include "src/net/latency_model.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace optilog {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  sim.Cancel(id);
  sim.Cancel(id);
  sim.Cancel(kNoEvent);
  sim.RunAll();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(10, [&] { ++count; });
  sim.ScheduleAt(20, [&] { ++count; });
  sim.ScheduleAt(30, [&] { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.RunUntil(50);
  SimTime ran_at = -1;
  sim.ScheduleAt(10, [&] { ran_at = sim.now(); });
  sim.RunAll();
  EXPECT_EQ(ran_at, 50);
}

TEST(Simulator, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(10, recurse);
    }
  };
  sim.ScheduleAt(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Geo, DatasetHas220Locations) {
  EXPECT_EQ(WorldCities().size(), 220u);
}

TEST(Geo, SubsetsMatchPaperSizes) {
  EXPECT_EQ(Europe21().size(), 21u);
  EXPECT_EQ(NaEu43().size(), 43u);
  EXPECT_EQ(Global73().size(), 73u);
  EXPECT_EQ(Stellar56().size(), 56u);
}

TEST(Geo, Europe21IsAllEuropean) {
  for (const City& c : Europe21()) {
    EXPECT_EQ(static_cast<int>(c.region), static_cast<int>(Region::kEurope));
  }
}

TEST(Geo, HaversineKnownDistances) {
  // London <-> New York is about 5570 km.
  const double d = HaversineKm(51.51, -0.13, 40.71, -74.01);
  EXPECT_NEAR(d, 5570, 100);
  // Same point.
  EXPECT_NEAR(HaversineKm(10, 20, 10, 20), 0.0, 1e-9);
}

TEST(Geo, IntercontinentalRttInPaperBand) {
  // §7.3: intercontinental delays range from 150 to 250 ms.
  const City london{"London", 51.51, -0.13, Region::kEurope};
  const City tokyo{"Tokyo", 35.68, 139.69, Region::kAsia};
  const City sydney{"Sydney", -33.87, 151.21, Region::kOceania};
  const City ny{"New York", 40.71, -74.01, Region::kNorthAmerica};
  EXPECT_GT(CityRttMs(london, tokyo), 120);
  EXPECT_LT(CityRttMs(london, tokyo), 260);
  EXPECT_GT(CityRttMs(london, sydney), 150);
  EXPECT_LT(CityRttMs(london, sydney), 300);
  EXPECT_GT(CityRttMs(ny, london), 60);
  EXPECT_LT(CityRttMs(ny, london), 120);
}

TEST(Geo, IntraEuropeRttSmall) {
  const auto eu = Europe21();
  const auto m = RttMatrixMs(eu);
  for (size_t i = 0; i < eu.size(); ++i) {
    for (size_t j = i + 1; j < eu.size(); ++j) {
      EXPECT_LT(m[i][j], 80.0) << eu[i].name << "<->" << eu[j].name;
      EXPECT_GE(m[i][j], 1.0);
    }
  }
}

TEST(Geo, RttMatrixSymmetric) {
  const auto cities = Global73();
  const auto m = RttMatrixMs(cities);
  for (size_t i = 0; i < cities.size(); ++i) {
    EXPECT_EQ(m[i][i], 0.0);
    for (size_t j = 0; j < cities.size(); ++j) {
      EXPECT_EQ(m[i][j], m[j][i]);
    }
  }
}

TEST(Geo, GlobalNDeterministicAndSized) {
  const auto a = GlobalN(100, 5);
  const auto b = GlobalN(100, 5);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
  }
  EXPECT_EQ(GlobalN(300, 5).size(), 300u);  // wraps beyond dataset
}

TEST(LatencyModel, GeoModelSymmetricOneWay) {
  GeoLatencyModel model(Europe21());
  for (ReplicaId a = 0; a < 21; ++a) {
    for (ReplicaId b = 0; b < 21; ++b) {
      EXPECT_EQ(model.OneWay(a, b), model.OneWay(b, a));
    }
  }
  EXPECT_EQ(model.OneWay(3, 3), 0);
}

TEST(LatencyModel, MatrixModelSetAndGet) {
  MatrixLatencyModel model(4, 10 * kMsec);
  EXPECT_EQ(model.OneWay(0, 1), 10 * kMsec);
  model.Set(0, 1, 5 * kMsec);
  EXPECT_EQ(model.OneWay(0, 1), 5 * kMsec);
  EXPECT_EQ(model.OneWay(1, 0), 5 * kMsec);
  EXPECT_EQ(model.Rtt(0, 1), 10 * kMsec);
}

class Recorder : public Actor {
 public:
  void OnMessage(ReplicaId from, const MessagePtr& msg, SimTime at) override {
    (void)msg;
    deliveries.emplace_back(from, at);
  }
  std::vector<std::pair<ReplicaId, SimTime>> deliveries;
};

struct TestMsg : Message {
  size_t bytes = 100;
  int kind = 1;
  int type() const override { return kind; }
  MsgFamily family() const override { return MsgFamily::kWorkload; }
  void EncodeTo(ByteWriter& w) const override { w.ZeroPad(bytes); }
  std::string Name() const override { return "Test"; }
};

TEST(Network, DeliversWithPropagationDelay) {
  Simulator sim;
  MatrixLatencyModel latency(2, 7 * kMsec);
  FaultModel faults;
  Network net(&sim, &latency, &faults);
  Recorder r;
  net.Register(1, &r);
  net.Send(0, 1, MakeMessage<TestMsg>());
  sim.RunAll();
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].second, 7 * kMsec);
}

TEST(Network, CrashedSenderSendsNothing) {
  Simulator sim;
  MatrixLatencyModel latency(2, kMsec);
  FaultModel faults;
  faults.Mutable(0).crash_at = 0;
  Network net(&sim, &latency, &faults);
  Recorder r;
  net.Register(1, &r);
  net.Send(0, 1, MakeMessage<TestMsg>());
  sim.RunAll();
  EXPECT_TRUE(r.deliveries.empty());
}

TEST(Network, CrashedReceiverDropsDelivery) {
  Simulator sim;
  MatrixLatencyModel latency(2, kMsec);
  FaultModel faults;
  faults.Mutable(1).crash_at = 500;  // crashes before delivery at 1000
  Network net(&sim, &latency, &faults);
  Recorder r;
  net.Register(1, &r);
  net.Send(0, 1, MakeMessage<TestMsg>());
  sim.RunAll();
  EXPECT_TRUE(r.deliveries.empty());
}

TEST(Network, DelayFactorSlowsSender) {
  Simulator sim;
  MatrixLatencyModel latency(2, 10 * kMsec);
  FaultModel faults;
  faults.Mutable(0).outbound_delay_factor = 1.4;
  Network net(&sim, &latency, &faults);
  Recorder r;
  net.Register(1, &r);
  net.Send(0, 1, MakeMessage<TestMsg>());
  sim.RunAll();
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].second, 14 * kMsec);
}

TEST(Network, FastProbesExemptProbeMessages) {
  Simulator sim;
  MatrixLatencyModel latency(2, 10 * kMsec);
  FaultModel faults;
  auto& f = faults.Mutable(0);
  f.outbound_delay_factor = 2.0;
  f.fast_probes = true;
  Network net(&sim, &latency, &faults);
  net.SetProbeClassifier([](const Message& m) { return m.type() == 99; });
  Recorder r;
  net.Register(1, &r);
  auto probe = MakeMessage<TestMsg>();
  probe->kind = 99;
  net.Send(0, 1, probe);
  net.Send(0, 1, MakeMessage<TestMsg>());  // protocol message
  sim.RunAll();
  ASSERT_EQ(r.deliveries.size(), 2u);
  EXPECT_EQ(r.deliveries[0].second, 10 * kMsec);  // probe: honest
  EXPECT_EQ(r.deliveries[1].second, 20 * kMsec);  // protocol: delayed
}

TEST(Network, ProposalDelayAttack) {
  Simulator sim;
  MatrixLatencyModel latency(2, 10 * kMsec);
  FaultModel faults;
  faults.Mutable(0).proposal_delay = 500 * kMsec;
  Network net(&sim, &latency, &faults);
  net.SetProposalClassifier([](const Message& m) { return m.type() == 42; });
  Recorder r;
  net.Register(1, &r);
  auto proposal = MakeMessage<TestMsg>();
  proposal->kind = 42;
  net.Send(0, 1, proposal);
  net.Send(0, 1, MakeMessage<TestMsg>());
  sim.RunAll();
  ASSERT_EQ(r.deliveries.size(), 2u);
  // Non-proposal is on time; proposal is delayed by 500 ms.
  EXPECT_EQ(r.deliveries[0].second, 10 * kMsec);
  EXPECT_EQ(r.deliveries[1].second, 510 * kMsec);
}

TEST(Network, SendSelfHonorsCrashBetweenScheduleAndDelivery) {
  Simulator sim;
  MatrixLatencyModel latency(2, kMsec);
  FaultModel faults;
  Network net(&sim, &latency, &faults);
  Recorder r;
  net.Register(1, &r);
  // At t = 10: the loopback is scheduled first, then a same-instant event
  // crashes the replica before the zero-delay delivery runs. Loopback must
  // drop the message exactly like Send's receiver-side check.
  sim.ScheduleAt(10, [&] { net.SendSelf(1, MakeMessage<TestMsg>()); });
  sim.ScheduleAt(10, [&] { faults.Mutable(1).crash_at = 10; });
  sim.RunAll();
  EXPECT_TRUE(r.deliveries.empty());
}

TEST(Network, SendSelfDeliversAtSameInstant) {
  Simulator sim;
  MatrixLatencyModel latency(2, kMsec);
  FaultModel faults;
  Network net(&sim, &latency, &faults);
  Recorder r;
  net.Register(1, &r);
  sim.RunUntil(25);
  net.SendSelf(1, MakeMessage<TestMsg>());
  sim.RunAll();
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].first, 1u);
  EXPECT_EQ(r.deliveries[0].second, 25);
}

TEST(Network, BandwidthSerializesMulticast) {
  Simulator sim;
  MatrixLatencyModel latency(4, 10 * kMsec);
  FaultModel faults;
  Network net(&sim, &latency, &faults);
  net.SetBandwidthBps(8'000'000);  // 8 Mbit/s -> 1 MB/s -> 1000 bytes/ms
  Recorder r1, r2, r3;
  net.Register(1, &r1);
  net.Register(2, &r2);
  net.Register(3, &r3);
  auto msg = MakeMessage<TestMsg>();
  msg->bytes = 10'000;  // 10 ms serialization each
  net.Multicast(0, {1, 2, 3}, msg);
  sim.RunAll();
  ASSERT_EQ(r1.deliveries.size(), 1u);
  // Copy i finishes serializing at i * 10 ms, then 10 ms propagation.
  EXPECT_EQ(r1.deliveries[0].second, 20 * kMsec);
  EXPECT_EQ(r2.deliveries[0].second, 30 * kMsec);
  EXPECT_EQ(r3.deliveries[0].second, 40 * kMsec);
}

// A dissemination hop: forwards every received message to its children,
// recording arrival times — the network-level skeleton of a proposal
// flowing down a tree.
class ForwardingActor : public Actor {
 public:
  ForwardingActor(Network* net, ReplicaId id, std::vector<ReplicaId> children)
      : net_(net), id_(id), children_(std::move(children)) {}

  void OnMessage(ReplicaId from, const MessagePtr& msg, SimTime at) override {
    (void)from;
    arrivals.push_back(at);
    if (!children_.empty()) {
      net_->Multicast(id_, children_, msg);
    }
  }

  std::vector<SimTime> arrivals;

 private:
  Network* net_;
  const ReplicaId id_;
  std::vector<ReplicaId> children_;
};

// The Kauri §6.1.1 claim cited in network.h: under per-replica bandwidth, a
// star leader serializes k copies back to back (k * WireSize / bps on its
// single uplink), while a tree interior node serializes only its fanout —
// interior uplinks work in parallel, so the last replica hears the proposal
// sooner even though the tree adds propagation hops.
TEST(Network, BandwidthStarLeaderSerializesKCopiesTreeOnlyFanout) {
  constexpr SimTime kProp = 10 * kMsec;       // uniform one-way propagation
  constexpr SimTime kSerialize = 10 * kMsec;  // per-copy serialization
  // 8 Mbit/s uplinks and 10'000-byte messages give 10 ms per copy.
  auto msg = [] {
    auto m = MakeMessage<TestMsg>();
    m->bytes = 10'000;
    return m;
  };

  // Star: leader 0 fans out to 6 followers on one uplink.
  {
    Simulator sim;
    MatrixLatencyModel latency(7, kProp);
    FaultModel faults;
    Network net(&sim, &latency, &faults);
    net.SetBandwidthBps(8'000'000);
    std::vector<std::unique_ptr<ForwardingActor>> leaves;
    std::vector<ReplicaId> all;
    for (ReplicaId id = 1; id < 7; ++id) {
      leaves.push_back(std::make_unique<ForwardingActor>(&net, id,
                                                         std::vector<ReplicaId>{}));
      net.Register(id, leaves.back().get());
      all.push_back(id);
    }
    net.Multicast(0, all, msg());
    sim.RunAll();
    // Copy i leaves the leader's NIC at (i + 1) * S; k = 6 copies occupy the
    // uplink for k * WireSize / bps = 60 ms total.
    for (size_t i = 0; i < leaves.size(); ++i) {
      ASSERT_EQ(leaves[i]->arrivals.size(), 1u);
      EXPECT_EQ(leaves[i]->arrivals[0],
                static_cast<SimTime>(i + 1) * kSerialize + kProp);
    }
  }

  // Tree over the same 7 replicas: 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}.
  {
    Simulator sim;
    MatrixLatencyModel latency(7, kProp);
    FaultModel faults;
    Network net(&sim, &latency, &faults);
    net.SetBandwidthBps(8'000'000);
    ForwardingActor n1(&net, 1, {3, 4}), n2(&net, 2, {5, 6});
    ForwardingActor n3(&net, 3, {}), n4(&net, 4, {}), n5(&net, 5, {});
    ForwardingActor n6(&net, 6, {});
    net.Register(1, &n1);
    net.Register(2, &n2);
    net.Register(3, &n3);
    net.Register(4, &n4);
    net.Register(5, &n5);
    net.Register(6, &n6);
    net.Multicast(0, {1, 2}, msg());
    sim.RunAll();
    // The root's uplink is busy for only fanout * S = 20 ms.
    EXPECT_EQ(n1.arrivals[0], 1 * kSerialize + kProp);  // 20 ms
    EXPECT_EQ(n2.arrivals[0], 2 * kSerialize + kProp);  // 30 ms
    // Interiors serialize their own fanout in parallel on separate uplinks.
    EXPECT_EQ(n3.arrivals[0], n1.arrivals[0] + 1 * kSerialize + kProp);  // 40
    EXPECT_EQ(n4.arrivals[0], n1.arrivals[0] + 2 * kSerialize + kProp);  // 50
    EXPECT_EQ(n5.arrivals[0], n2.arrivals[0] + 1 * kSerialize + kProp);  // 50
    EXPECT_EQ(n6.arrivals[0], n2.arrivals[0] + 2 * kSerialize + kProp);  // 60
    // Last tree replica (60 ms) still beats the star's last (70 ms): the
    // root bottleneck, not propagation, dominates.
    EXPECT_LT(n6.arrivals[0], 6 * kSerialize + kProp);
  }
}

TEST(Network, StatsCountMessagesAndBytes) {
  Simulator sim;
  MatrixLatencyModel latency(2, kMsec);
  FaultModel faults;
  Network net(&sim, &latency, &faults);
  Recorder r;
  net.Register(1, &r);
  net.Send(0, 1, MakeMessage<TestMsg>());
  net.Send(0, 1, MakeMessage<TestMsg>());
  sim.RunAll();
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 200u);
}

TEST(FaultModel, DefaultsAreHonest) {
  FaultModel faults;
  EXPECT_FALSE(faults.Of(3).IsByzantine());
  EXPECT_EQ(faults.num_byzantine(), 0u);
  faults.Mutable(1).equivocate = true;
  EXPECT_EQ(faults.num_byzantine(), 1u);
  EXPECT_FALSE(faults.IsCrashedAt(1, 1000));
}

}  // namespace
}  // namespace optilog
