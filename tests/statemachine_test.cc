// The replicated-state-machine subsystem (src/statemachine/): KV machine
// determinism, checkpoint byte-equality across replicas in both protocol
// families, log truncation invariants, and crash-recovery state transfer.
#include <gtest/gtest.h>

#include "src/api/deployment.h"
#include "src/runner/scenario.h"
#include "src/statemachine/group.h"
#include "src/statemachine/replica_rsm.h"
#include "src/statemachine/state_machine.h"

namespace optilog {
namespace {

// --- KvStateMachine ----------------------------------------------------------

Bytes Op(KvOpKind kind, uint64_t key, uint64_t arg = 0) {
  KvOp op;
  op.kind = kind;
  op.key = key;
  op.arg = arg;
  return op.Encode();
}

KvResult Apply(StateMachine& sm, KvOpKind kind, uint64_t key,
               uint64_t arg = 0) {
  KvResult res;
  EXPECT_TRUE(KvResult::Decode(sm.Apply(Op(kind, key, arg)), &res));
  return res;
}

TEST(KvStateMachine, OperationsAndResults) {
  KvStateMachine sm;
  KvResult res = Apply(sm, KvOpKind::kGet, 7);
  EXPECT_FALSE(res.found);

  res = Apply(sm, KvOpKind::kPut, 7, 42);
  EXPECT_FALSE(res.found);  // fresh key
  EXPECT_EQ(res.value, 42u);

  res = Apply(sm, KvOpKind::kGet, 7);
  EXPECT_TRUE(res.found);
  EXPECT_EQ(res.value, 42u);

  res = Apply(sm, KvOpKind::kAdd, 7, 8);
  EXPECT_TRUE(res.found);
  EXPECT_EQ(res.value, 50u);

  res = Apply(sm, KvOpKind::kAdd, 9, 5);  // RMW on an absent key starts at 0
  EXPECT_FALSE(res.found);
  EXPECT_EQ(res.value, 5u);
}

TEST(KvStateMachine, SnapshotRestoreRoundTripAndDigest) {
  KvStateMachine a;
  Apply(a, KvOpKind::kPut, 1, 10);
  Apply(a, KvOpKind::kPut, 2, 20);
  Apply(a, KvOpKind::kAdd, 1, 5);

  KvStateMachine b;
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  b.Restore(a.SnapshotBytes());
  EXPECT_EQ(a.SnapshotBytes(), b.SnapshotBytes());
  EXPECT_EQ(a.StateDigest(), b.StateDigest());

  Apply(b, KvOpKind::kPut, 3, 30);
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  b.Reset();
  EXPECT_EQ(b.size(), 0u);
}

TEST(KvStateMachine, MalformedOpIsADeterministicNoop) {
  KvStateMachine sm;
  const Digest before = sm.StateDigest();
  KvResult res;
  ASSERT_TRUE(KvResult::Decode(sm.Apply(Bytes{0xff, 0x01}), &res));
  EXPECT_FALSE(res.found);
  EXPECT_EQ(sm.StateDigest(), before);
}

// --- Log truncation ----------------------------------------------------------

LogEntry CommandEntry(uint32_t batch, uint8_t tag) {
  LogEntry e;
  e.kind = EntryKind::kCommandBatch;
  e.batch_size = batch;
  e.payload = {tag};
  return e;
}

TEST(LogTruncation, ChainHeadIsInvariantToTruncationPoints) {
  // Three logs, same appends, truncated at different points (or never):
  // the chain head must be byte-identical regardless.
  Log never, early, late;
  for (uint8_t i = 0; i < 12; ++i) {
    never.Append(CommandEntry(10, i));
    early.Append(CommandEntry(10, i));
    late.Append(CommandEntry(10, i));
    if (i == 3) {
      early.TruncateTo(4);
    }
    if (i == 9) {
      late.TruncateTo(8);
    }
  }
  EXPECT_EQ(never.head(), early.head());
  EXPECT_EQ(never.head(), late.head());
  EXPECT_EQ(never.next_index(), early.next_index());

  EXPECT_EQ(early.base_index(), 4u);
  EXPECT_EQ(early.size(), 8u);
  EXPECT_EQ(late.base_index(), 8u);
  EXPECT_EQ(late.size(), 4u);
  // base_head records the chain at the cut; appends continue from head().
  EXPECT_EQ(early.base_head(), never.HeadAt(3));
  EXPECT_EQ(late.base_head(), never.HeadAt(7));
}

TEST(LogTruncation, EntryAtIsBaseOffsetAware) {
  Log log;
  for (uint8_t i = 0; i < 10; ++i) {
    log.Append(CommandEntry(1, i));
  }
  log.TruncateTo(6);
  EXPECT_FALSE(log.Has(5));
  ASSERT_TRUE(log.Has(6));
  EXPECT_EQ(log.EntryAt(6).index, 6u);
  EXPECT_EQ(log.EntryAt(9).payload, Bytes{9});
  EXPECT_EQ(log.next_index(), 10u);
  // Appends after truncation keep absolute indexing.
  log.Append(CommandEntry(1, 10));
  EXPECT_EQ(log.EntryAt(10).index, 10u);
  EXPECT_EQ(log.peak_size(), 10u);  // high-water mark predates truncation
  EXPECT_EQ(log.truncations(), 1u);
}

TEST(LogTruncation, ResetToBaseContinuesTheDonorChain) {
  Log donor;
  for (uint8_t i = 0; i < 8; ++i) {
    donor.Append(CommandEntry(2, i));
  }
  // A recovering replica adopts the chain position at index 4 and replays
  // the suffix; heads must converge entry by entry.
  Log recovered;
  recovered.ResetToBase(5, donor.HeadAt(4));
  for (uint64_t i = 5; i < 8; ++i) {
    recovered.Append(donor.EntryAt(i));
    EXPECT_EQ(recovered.head(), donor.HeadAt(i));
  }
  EXPECT_EQ(recovered.head(), donor.head());
}

// --- FaultModel recovery window ----------------------------------------------

TEST(FaultWindow, IsCrashedHonorsCrashRecoverWindow) {
  FaultModel faults;
  faults.Mutable(1).crash_at = 1000;
  faults.Mutable(1).recover_at = 5000;
  EXPECT_FALSE(faults.IsCrashedAt(1, 999));
  EXPECT_TRUE(faults.IsCrashedAt(1, 1000));
  EXPECT_TRUE(faults.IsCrashedAt(1, 4999));
  EXPECT_FALSE(faults.IsCrashedAt(1, 5000));
  EXPECT_FALSE(faults.IsCrashedAt(1, 9999));
  // Without recover_at the crash stays a one-way door.
  faults.Mutable(2).crash_at = 1000;
  EXPECT_TRUE(faults.IsCrashedAt(2, 1'000'000'000));
}

// Delivery semantics across the window, loopback included (the PR-2
// SendSelf crash-at-delivery contract extended to recovery).
struct RecordingActor : Actor {
  void OnMessage(ReplicaId, const MessagePtr&, SimTime at) override {
    deliveries.push_back(at);
  }
  std::vector<SimTime> deliveries;
};

struct PingMsg : Message {
  int type() const override { return 99; }
  MsgFamily family() const override { return MsgFamily::kState; }
  void EncodeTo(ByteWriter& w) const override { w.ZeroPad(8); }
  std::string Name() const override { return "Ping"; }
};

TEST(FaultWindow, DeliveriesResumeAfterRecovery) {
  Simulator sim;
  FaultModel faults;
  MatrixLatencyModel latency(2, /*one_way=*/100);
  Network net(&sim, &latency, &faults);
  RecordingActor a0, a1;
  net.Register(0, &a0);
  net.Register(1, &a1);
  faults.Mutable(1).crash_at = 500;
  faults.Mutable(1).recover_at = 1500;

  // Lands at 100: before the window — delivered.
  net.Send(0, 1, MakeMessage<PingMsg>());
  sim.RunUntil(900);
  // Sent at 900, lands at 1000: inside the window — dropped.
  net.Send(0, 1, MakeMessage<PingMsg>());
  sim.RunUntil(1600);
  // Sent at 1600 (after recovery), lands at 1700 — delivered.
  net.Send(0, 1, MakeMessage<PingMsg>());
  // Loopback honors the same window: self-send at 1700 delivered, and the
  // crashed replica's own loopback inside the window would have been
  // dropped at source.
  sim.RunUntil(1700);
  net.SendSelf(1, MakeMessage<PingMsg>());
  sim.RunUntil(2000);

  ASSERT_EQ(a1.deliveries.size(), 3u);
  EXPECT_EQ(a1.deliveries[0], 100u);
  EXPECT_EQ(a1.deliveries[1], 1700u);
  EXPECT_EQ(a1.deliveries[2], 1700u);
}

// --- checkpoint determinism across replicas ----------------------------------

WorkloadOptions ClosedLoopKv() {
  WorkloadOptions w;
  w.arrival = ArrivalProcess::kClosedLoop;
  w.outstanding = 1;
  w.think_time = 10 * kMsec;
  w.retry_timeout = 800 * kMsec;
  w.batch.max_batch = 32;
  w.batch.max_delay = 5 * kMsec;
  return w;
}

StateMachineOptions CheckpointedEvery(uint64_t interval, bool truncate,
                                      bool history) {
  StateMachineOptions opts;
  opts.checkpoint.interval = interval;
  opts.checkpoint.truncate = truncate;
  opts.checkpoint.keep_history = history;
  return opts;
}

// Every replica that stayed live must hold byte-identical checkpoints at
// every checkpoint index, and matching state digests at the frontier.
void ExpectCheckpointsIdentical(Deployment& d) {
  const RsmGroup* group = d.state_machines();
  ASSERT_NE(group, nullptr);
  const auto& reference = group->rsm(0).checkpoint_history();
  ASSERT_FALSE(reference.empty()) << "run too short: no checkpoints taken";
  for (ReplicaId id = 1; id < d.n(); ++id) {
    const auto& mine = group->rsm(id).checkpoint_history();
    // PBFT replicas may lag by in-flight instances; compare the shared
    // prefix of checkpoint histories.
    const size_t common = std::min(reference.size(), mine.size());
    ASSERT_GE(common, 1u);
    for (size_t k = 0; k < common; ++k) {
      EXPECT_EQ(mine[k].through_index, reference[k].through_index);
      EXPECT_EQ(mine[k].state_digest, reference[k].state_digest);
      EXPECT_EQ(mine[k].log_head, reference[k].log_head);
      EXPECT_EQ(mine[k].state, reference[k].state)
          << "snapshot bytes diverge at checkpoint " << k;
    }
  }
}

TEST(CheckpointDeterminism, MiniKauriIdenticalSnapshotsEverywhere) {
  auto d = Deployment::Builder()
               .WithReplicas(7, 2)
               .WithProtocol(Protocol::kKauri)
               .WithSeed(11)
               .WithWorkload(ClosedLoopKv())
               .WithStateMachine(CheckpointedEvery(4, /*truncate=*/true,
                                                   /*history=*/true))
               .Build();
  d->Start();
  d->RunUntil(8 * kSec);
  ExpectCheckpointsIdentical(*d);

  const MetricsReport m = d->Metrics();
  EXPECT_TRUE(m.statemachine.enabled);
  EXPECT_GT(m.statemachine.applied, 0u);
  EXPECT_GT(m.statemachine.checkpoints, 0u);
  EXPECT_EQ(m.statemachine.digests_equal, 1u);
  EXPECT_EQ(m.statemachine.state_digest_hex.size(), 64u);
  EXPECT_GT(m.workload.kv_checks, 0u);
  EXPECT_EQ(m.workload.kv_mismatches, 0u);
}

TEST(CheckpointDeterminism, MiniPbftIdenticalSnapshotsEverywhere) {
  auto d = Deployment::Builder()
               .WithReplicas(7, 2)
               .WithProtocol(Protocol::kPbft)
               .WithSeed(12)
               .WithWorkload(ClosedLoopKv())
               .WithStateMachine(CheckpointedEvery(4, /*truncate=*/true,
                                                   /*history=*/true))
               .Build();
  d->Start();
  d->RunUntil(8 * kSec);
  ExpectCheckpointsIdentical(*d);

  const MetricsReport m = d->Metrics();
  EXPECT_GT(m.statemachine.applied, 0u);
  EXPECT_EQ(m.statemachine.digests_equal, 1u);
  EXPECT_GT(m.workload.kv_checks, 0u);
  EXPECT_EQ(m.workload.kv_mismatches, 0u);
}

TEST(CheckpointDeterminism, TruncationBoundsPeakLogMemory) {
  auto base = Deployment::Builder()
                  .WithReplicas(7, 2)
                  .WithProtocol(Protocol::kKauri)
                  .WithSeed(13)
                  .WithWorkload(ClosedLoopKv());
  auto bounded = base.Clone()
                     .WithStateMachine(CheckpointedEvery(8, true, false))
                     .Build();
  auto unbounded = base.Clone()
                       .WithStateMachine(CheckpointedEvery(8, false, false))
                       .Build();
  for (auto* d : {bounded.get(), unbounded.get()}) {
    d->Start();
    d->RunUntil(10 * kSec);
  }
  const MetricsReport mb = bounded->Metrics();
  const MetricsReport mu = unbounded->Metrics();
  // Identical schedule (truncation never changes execution)...
  EXPECT_EQ(mb.statemachine.applied, mu.statemachine.applied);
  EXPECT_EQ(mb.statemachine.state_digest_hex, mu.statemachine.state_digest_hex);
  ASSERT_GT(mu.statemachine.applied, 16u) << "run too short to show the bound";
  // ...but bounded memory: peak in-memory entries never exceed one interval
  // plus the entries since the last checkpoint, while the untruncated log
  // grows with the run.
  EXPECT_LE(mb.statemachine.peak_log_entries, 2 * 8u);
  EXPECT_EQ(mu.statemachine.peak_log_entries, mu.statemachine.applied);
  EXPECT_GT(mb.statemachine.truncations, 0u);
  EXPECT_EQ(mu.statemachine.truncations, 0u);
}

// --- crash recovery ----------------------------------------------------------

TEST(Recovery, TreeReplicaRejoinsViaSnapshotAndSuffix) {
  const SimTime crash_at = 4 * kSec;
  const SimTime recover_at = 10 * kSec;
  ReplicaId victim = kNoReplica;
  auto d = Deployment::Builder()
               .WithReplicas(7, 2)
               .WithProtocol(Protocol::kOptiTree)
               .WithSeed(21)
               .WithInitialSearch(AnnealingParams::ForBudget(2000))
               .WithOptiLogReconfig(/*search_window=*/500 * kMsec)
               .WithWorkload(ClosedLoopKv())
               .WithStateMachine(CheckpointedEvery(8, true, false))
               .WithFaults([&](Deployment& dep) {
                 victim = dep.tree().topology().root();
                 dep.faults().Mutable(victim).crash_at = crash_at;
                 dep.faults().Mutable(victim).recover_at = recover_at;
               })
               .Build();
  d->Start();
  d->RunUntil(25 * kSec);

  const MetricsReport m = d->Metrics();
  EXPECT_EQ(m.statemachine.recoveries_started, 1u);
  EXPECT_EQ(m.statemachine.recoveries_completed, 1u);
  EXPECT_GT(m.statemachine.transfer_bytes, 0u);
  EXPECT_GT(m.statemachine.transfer_chunks, 0u);
  EXPECT_GT(m.statemachine.catchup_ms_max, 0.0);
  // The recovered replica holds the same state as everyone else.
  EXPECT_EQ(m.statemachine.digests_equal, 1u);
  ASSERT_NE(victim, kNoReplica);
  EXPECT_EQ(d->state_machines()->rsm(victim).applied(), m.statemachine.applied);
  EXPECT_EQ(m.workload.kv_mismatches, 0u);
}

TEST(Recovery, PbftReplicaRejoinsAndCatchesUp) {
  auto d = Deployment::Builder()
               .WithReplicas(7, 2)
               .WithProtocol(Protocol::kPbft)
               .WithSeed(22)
               .WithWorkload(ClosedLoopKv())
               .WithStateMachine(CheckpointedEvery(8, true, false))
               .WithFaults([](Deployment& dep) {
                 dep.faults().Mutable(3).crash_at = 3 * kSec;
                 dep.faults().Mutable(3).recover_at = 8 * kSec;
               })
               .Build();
  d->Start();
  d->RunUntil(20 * kSec);

  const MetricsReport m = d->Metrics();
  EXPECT_EQ(m.statemachine.recoveries_started, 1u);
  EXPECT_EQ(m.statemachine.recoveries_completed, 1u);
  EXPECT_GT(m.statemachine.transfer_bytes, 0u);
  EXPECT_EQ(m.statemachine.digests_equal, 1u);
  // The recovered replica reached (at least) every decided instance that
  // is stable across the cluster.
  const uint64_t victim_applied = d->state_machines()->rsm(3).applied();
  EXPECT_GT(victim_applied, 0u);
  EXPECT_EQ(m.workload.kv_mismatches, 0u);
}

TEST(Recovery, RunsAreDeterministic) {
  auto run = [] {
    auto d = Deployment::Builder()
                 .WithReplicas(7, 2)
                 .WithProtocol(Protocol::kPbft)
                 .WithSeed(33)
                 .WithWorkload(ClosedLoopKv())
                 .WithStateMachine(CheckpointedEvery(8, true, false))
                 .WithFaults([](Deployment& dep) {
                   dep.faults().Mutable(2).crash_at = 3 * kSec;
                   dep.faults().Mutable(2).recover_at = 7 * kSec;
                 })
                 .Build();
    d->Start();
    d->RunUntil(15 * kSec);
    return MetricsFingerprint(d->Metrics());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace optilog
