#include <gtest/gtest.h>

#include "src/core/annealing.h"
#include "src/core/config_search.h"
#include "src/core/pipeline.h"
#include "src/core/suspicion_sensor.h"
#include "src/tree/tree_space.h"

namespace optilog {
namespace {

// --- SuspicionSensor -------------------------------------------------------

class SensorTest : public ::testing::Test {
 protected:
  SensorTest()
      : sensor_(0, /*delta=*/1.5,
                [this](const SuspicionRecord& rec) { emitted_.push_back(rec); }) {}

  SuspicionSensor sensor_;
  std::vector<SuspicionRecord> emitted_;
};

TEST_F(SensorTest, ConditionA_DelayedProposalTimestamp) {
  // d_rnd = 100 ms; delta = 1.5 -> allowed gap 150 ms.
  sensor_.OnProposalTimestamp(1, /*leader=*/3, 0, FromMs(100));
  sensor_.OnProposalTimestamp(2, 3, FromMs(140), FromMs(100));
  EXPECT_TRUE(emitted_.empty());
  sensor_.OnProposalTimestamp(3, 3, FromMs(140) + FromMs(200), FromMs(100));
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(emitted_[0].suspect, 3u);
  EXPECT_EQ(static_cast<int>(emitted_[0].type), static_cast<int>(SuspicionType::kSlow));
  EXPECT_EQ(static_cast<int>(emitted_[0].phase), static_cast<int>(PhaseTag::kProposal));
}

TEST_F(SensorTest, ConditionB_MissingMessage) {
  sensor_.OnProposalTimestamp(1, 3, FromMs(10), FromMs(100));
  sensor_.ExpectMessage(1, /*from=*/5, PhaseTag::kFirstVote, FromMs(40));
  // Deadline = 10 + 1.5 * 40 = 70 ms.
  sensor_.CheckDeadlines(FromMs(69));
  EXPECT_TRUE(emitted_.empty());
  sensor_.CheckDeadlines(FromMs(71));
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(emitted_[0].suspect, 5u);
}

TEST_F(SensorTest, ArrivalCancelsSuspicion) {
  sensor_.OnProposalTimestamp(1, 3, FromMs(10), FromMs(100));
  sensor_.ExpectMessage(1, 5, PhaseTag::kFirstVote, FromMs(40));
  sensor_.OnMessageArrived(1, 5, PhaseTag::kFirstVote);
  sensor_.CheckDeadlines(FromMs(1000));
  EXPECT_TRUE(emitted_.empty());
}

TEST_F(SensorTest, ObserveArrivalRetrospective) {
  sensor_.ObserveArrival(1, 4, PhaseTag::kProposal, FromMs(30), FromMs(0),
                         FromMs(44));  // deadline 45: on time
  EXPECT_TRUE(emitted_.empty());
  sensor_.ObserveArrival(2, 4, PhaseTag::kProposal, FromMs(30), FromMs(0),
                         FromMs(46));  // late
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(emitted_[0].round, 2u);
}

TEST_F(SensorTest, ConditionC_Reciprocation) {
  SuspicionRecord against_self;
  against_self.type = SuspicionType::kSlow;
  against_self.suspector = 7;
  against_self.suspect = 0;  // us
  against_self.round = 3;
  sensor_.OnSuspicionAgainstSelf(against_self);
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(static_cast<int>(emitted_[0].type), static_cast<int>(SuspicionType::kFalse));
  EXPECT_EQ(emitted_[0].suspect, 7u);
  // Repeated accusations from the same replica reciprocate once.
  sensor_.OnSuspicionAgainstSelf(against_self);
  EXPECT_EQ(emitted_.size(), 1u);
}

TEST_F(SensorTest, NoSelfSuspicionAndPerRoundDedup) {
  sensor_.OnProposalTimestamp(1, 3, FromMs(10), FromMs(100));
  sensor_.ExpectMessage(1, 5, PhaseTag::kFirstVote, FromMs(40));
  sensor_.ExpectMessage(1, 5, PhaseTag::kSecondVote, FromMs(50));
  sensor_.CheckDeadlines(FromMs(10'000));
  EXPECT_EQ(emitted_.size(), 1u);  // one Slow per (round, suspect)
}

TEST_F(SensorTest, GarbageCollectDropsOldRounds) {
  sensor_.OnProposalTimestamp(1, 3, FromMs(10), FromMs(100));
  sensor_.ExpectMessage(1, 5, PhaseTag::kFirstVote, FromMs(40));
  sensor_.GarbageCollect(1);
  sensor_.CheckDeadlines(FromMs(10'000));
  EXPECT_TRUE(emitted_.empty());
}

// --- Simulated annealing ---------------------------------------------------

TEST(Annealing, FindsMinimumOfConvexProblem) {
  Rng rng(3);
  auto score = [](int x) { return static_cast<double>((x - 17) * (x - 17)) + 1.0; };
  auto mutate = [](int x, Rng& r) {
    return x + static_cast<int>(r.Range(-3, 3));
  };
  AnnealingParams params;
  params.max_iterations = 5000;
  const auto result = SimulatedAnnealing(100, score, mutate, rng, params);
  EXPECT_EQ(result.best, 17);
  EXPECT_DOUBLE_EQ(result.best_score, 1.0);
}

TEST(Annealing, RespectsIterationBudget) {
  Rng rng(3);
  auto score = [](int x) { return static_cast<double>(x); };
  auto mutate = [](int x, Rng&) { return x; };
  AnnealingParams params;
  params.max_iterations = 100;
  params.cooling_rate = 1.0;  // never converges by temperature
  const auto result = SimulatedAnnealing(5, score, mutate, rng, params);
  EXPECT_EQ(result.iterations, 100u);
  EXPECT_FALSE(result.converged);
}

TEST(Annealing, ConvergesByTemperature) {
  Rng rng(3);
  auto score = [](int x) { return static_cast<double>(x * x) + 1.0; };
  auto mutate = [](int x, Rng& r) { return x + static_cast<int>(r.Range(-1, 1)); };
  AnnealingParams params;
  params.max_iterations = 1'000'000;
  params.cooling_rate = 0.9;
  const auto result = SimulatedAnnealing(10, score, mutate, rng, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 1000u);
}

TEST(Annealing, MoreIterationsNeverWorse) {
  // Best-so-far is monotone in the budget for a fixed seed.
  auto score = [](int x) { return std::abs(static_cast<double>(x)) + 1.0; };
  auto mutate = [](int x, Rng& r) { return x + static_cast<int>(r.Range(-2, 2)); };
  double prev = 1e18;
  for (uint64_t budget : {10u, 100u, 1000u}) {
    Rng rng(9);
    AnnealingParams params;
    params.max_iterations = budget;
    params.min_temperature = 0;
    const auto result = SimulatedAnnealing(1000, score, mutate, rng, params);
    EXPECT_LE(result.best_score, prev);
    prev = result.best_score;
  }
}

// --- ConfigSensor / ConfigMonitor -------------------------------------------

class ConfigTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 13, kF = 4;

  ConfigTest() : keys_(kN, 2), misbehavior_(kN, &keys_), space_(kN, 2 * kF + 1) {
    SuspicionMonitorOptions opts;
    opts.policy = CandidatePolicy::kTreeDisjointEdges;
    opts.min_candidates = BranchFactorFor(kN) + 1;
    suspicion_ = std::make_unique<SuspicionMonitor>(kN, kF, &misbehavior_, opts);
    latency_ = std::make_unique<LatencyMonitor>(kN);
    // Full matrix: RTT = 10 + |a - b| ms.
    for (ReplicaId a = 0; a < kN; ++a) {
      LatencyVectorRecord rec;
      rec.reporter = a;
      rec.rtt_units.resize(kN);
      for (ReplicaId b = 0; b < kN; ++b) {
        rec.rtt_units[b] =
            a == b ? 0 : EncodeRttMs(10.0 + std::abs(int(a) - int(b)));
      }
      latency_->OnLatencyVector(rec);
    }
    monitor_ = std::make_unique<ConfigMonitor>(
        kN, kF, &space_, latency_.get(), suspicion_.get(),
        [this](const RoleConfig& cfg, double score) {
          adopted_.push_back({cfg, score});
        });
  }

  ConfigProposalRecord MakeProposal(ReplicaId proposer, uint64_t seed) {
    ConfigSensor sensor(proposer, &space_, Rng(seed));
    AnnealingParams params;
    params.max_iterations = 300;
    auto rec = sensor.Search(suspicion_->Current(), latency_->matrix(), params);
    EXPECT_TRUE(rec.has_value());
    return *rec;
  }

  KeyStore keys_;
  MisbehaviorMonitor misbehavior_;
  TreeConfigSpace space_;
  std::unique_ptr<SuspicionMonitor> suspicion_;
  std::unique_ptr<LatencyMonitor> latency_;
  std::unique_ptr<ConfigMonitor> monitor_;
  std::vector<std::pair<RoleConfig, double>> adopted_;
};

TEST_F(ConfigTest, SensorProducesValidProposals) {
  const auto rec = MakeProposal(1, 11);
  EXPECT_TRUE(space_.Valid(rec.config, suspicion_->Current()));
  const double actual =
      space_.Score(rec.config, latency_->matrix(), suspicion_->Current().u);
  EXPECT_NEAR(rec.predicted_score, actual, 1e-9);
}

TEST_F(ConfigTest, ForcedReconfigWaitsForFPlusOneProposers) {
  // No active config -> forced path: needs f + 1 = 5 distinct proposers.
  for (uint32_t i = 0; i < kF; ++i) {
    monitor_->OnConfigProposal(MakeProposal(i, 100 + i), true);
    EXPECT_TRUE(adopted_.empty()) << "fired after only " << i + 1 << " proposals";
  }
  monitor_->OnConfigProposal(MakeProposal(kF, 100 + kF), true);
  ASSERT_EQ(adopted_.size(), 1u);
  EXPECT_TRUE(space_.Valid(adopted_[0].first, suspicion_->Current()));
}

TEST_F(ConfigTest, DuplicateProposerDoesNotCount) {
  for (int i = 0; i < 10; ++i) {
    monitor_->OnConfigProposal(MakeProposal(0, 200 + i), true);
  }
  EXPECT_TRUE(adopted_.empty());
}

TEST_F(ConfigTest, VoluntaryReconfigNeedsBigImprovement) {
  // Adopt an initial config; a marginally better proposal must NOT fire.
  const auto first = MakeProposal(0, 1);
  monitor_->SetActive(first.config, first.predicted_score);
  ConfigProposalRecord marginal = MakeProposal(1, 2);
  if (marginal.predicted_score <= 0.9 * first.predicted_score) {
    GTEST_SKIP() << "random search happened to find a >10% better tree";
  }
  monitor_->OnConfigProposal(marginal, true);
  EXPECT_TRUE(adopted_.empty());
}

TEST_F(ConfigTest, LyingProposerDetected) {
  ConfigProposalRecord rec = MakeProposal(2, 3);
  rec.predicted_score *= 0.5;  // claim an impossibly good score
  monitor_->OnConfigProposal(rec, true);
  EXPECT_TRUE(monitor_->lying_proposers().count(2) > 0);
}

TEST_F(ConfigTest, StaleEpochProposalsRejected) {
  ConfigProposalRecord rec = MakeProposal(0, 4);
  rec.epoch += 10;
  monitor_->OnConfigProposal(rec, true);
  for (uint32_t i = 1; i <= kF; ++i) {
    monitor_->OnConfigProposal(MakeProposal(i, 40 + i), true);
  }
  // The stale one never counted: only f valid proposers so far.
  EXPECT_TRUE(adopted_.empty());
}

TEST_F(ConfigTest, InvalidConfigRejected) {
  // Make replica 3 provably faulty, then propose a tree rooted at it.
  SignedHeader bad;
  bad.view = 1;
  bad.digest = Sha256::Hash(std::string("q"));
  bad.sig = keys_.Forge(3);
  ComplaintRecord complaint;
  complaint.accuser = 0;
  complaint.accused = 3;
  complaint.kind = MisbehaviorKind::kInvalidSignature;
  complaint.headers = {bad};
  misbehavior_.OnComplaint(complaint, true);
  suspicion_->Recompute();

  ConfigProposalRecord rec = MakeProposal(0, 5);
  TreeTopology t = TreeTopology::FromConfig(rec.config);
  // Force 3 into the root slot.
  std::vector<ReplicaId> internals = t.Internals();
  if (std::find(internals.begin(), internals.end(), 3) == internals.end()) {
    internals[0] = 3;
  }
  std::vector<ReplicaId> leaves;
  for (ReplicaId id = 0; id < kN; ++id) {
    if (std::find(internals.begin(), internals.end(), id) == leaves.end() &&
        std::find(internals.begin(), internals.end(), id) == internals.end()) {
      leaves.push_back(id);
    }
  }
  rec.config = TreeTopology::Build(internals, leaves).ToConfig();
  rec.epoch = suspicion_->Current().epoch;
  monitor_->OnConfigProposal(rec, true);
  EXPECT_EQ(monitor_->pending_proposals(), 0u);
}

// --- Pipeline determinism (the paper's core consistency claim) ----------------

TEST(Pipeline, IdenticalCommitOrderYieldsIdenticalState) {
  constexpr uint32_t kN = 13, kF = 4;
  KeyStore keys(kN, 3);
  TreeConfigSpace space(kN, 2 * kF + 1);

  struct Replica {
    std::unique_ptr<Pipeline> pipeline;
    std::vector<Bytes> proposed;
  };
  std::vector<Replica> replicas(3);
  for (uint32_t i = 0; i < replicas.size(); ++i) {
    Pipeline::Options opts;
    opts.suspicion.policy = CandidatePolicy::kTreeDisjointEdges;
    opts.suspicion.min_candidates = BranchFactorFor(kN) + 1;
    opts.rng_seed = 1000 + i;  // different local randomness
    auto& r = replicas[i];
    r.pipeline = std::make_unique<Pipeline>(
        i, kN, kF, &keys, &space,
        [&r](Bytes payload) { r.proposed.push_back(std::move(payload)); },
        [](const RoleConfig&, double) {}, opts);
  }

  // A shared committed sequence of measurements, including Byzantine noise.
  std::vector<Bytes> committed;
  for (ReplicaId a = 0; a < kN; ++a) {
    LatencyVectorRecord rec;
    rec.reporter = a;
    rec.rtt_units.resize(kN);
    for (ReplicaId b = 0; b < kN; ++b) {
      rec.rtt_units[b] = a == b ? 0 : EncodeRttMs(20.0 + (a * 7 + b * 3) % 11);
    }
    committed.push_back(MakeLatencyMeasurement(rec, keys).Encode());
  }
  SuspicionRecord s1;
  s1.type = SuspicionType::kSlow;
  s1.suspector = 2;
  s1.suspect = 9;
  s1.round = 1;
  committed.push_back(MakeSuspicionMeasurement(s1, keys).Encode());
  SuspicionRecord s2;
  s2.type = SuspicionType::kFalse;
  s2.suspector = 9;
  s2.suspect = 2;
  s2.round = 1;
  committed.push_back(MakeSuspicionMeasurement(s2, keys).Encode());
  // Unsigned garbage that must be ignored identically everywhere.
  committed.push_back(Bytes{0x02, 0x01, 0x00, 0x00, 0x00});

  for (auto& r : replicas) {
    uint64_t index = 0;
    for (const Bytes& payload : committed) {
      LogEntry e;
      e.index = index++;
      e.kind = EntryKind::kMeasurement;
      e.payload = payload;
      r.pipeline->OnCommit(e);
    }
  }

  const auto& first = replicas[0].pipeline->suspicion_monitor().Current();
  for (auto& r : replicas) {
    const auto& cur = r.pipeline->suspicion_monitor().Current();
    EXPECT_EQ(cur.candidates, first.candidates);
    EXPECT_EQ(cur.u, first.u);
    for (ReplicaId a = 0; a < kN; ++a) {
      for (ReplicaId b = 0; b < kN; ++b) {
        EXPECT_EQ(r.pipeline->latency_monitor().matrix().Rtt(a, b),
                  replicas[0].pipeline->latency_monitor().matrix().Rtt(a, b));
      }
    }
  }
}

TEST(Pipeline, ConfigSearchProposesThroughLog) {
  constexpr uint32_t kN = 13, kF = 4;
  KeyStore keys(kN, 3);
  TreeConfigSpace space(kN, 2 * kF + 1);
  std::vector<Bytes> proposed;
  Pipeline::Options opts;
  opts.suspicion.policy = CandidatePolicy::kTreeDisjointEdges;
  opts.suspicion.min_candidates = BranchFactorFor(kN) + 1;
  opts.annealing.max_iterations = 200;
  Pipeline pipeline(
      0, kN, kF, &keys, &space,
      [&](Bytes payload) { proposed.push_back(std::move(payload)); },
      [](const RoleConfig&, double) {}, opts);

  // Fill the latency matrix through the log.
  for (ReplicaId a = 0; a < kN; ++a) {
    LatencyVectorRecord rec;
    rec.reporter = a;
    rec.rtt_units.resize(kN);
    for (ReplicaId b = 0; b < kN; ++b) {
      rec.rtt_units[b] = a == b ? 0 : EncodeRttMs(15.0);
    }
    LogEntry e;
    e.kind = EntryKind::kMeasurement;
    e.payload = MakeLatencyMeasurement(rec, keys).Encode();
    pipeline.OnCommit(e);
  }
  const auto rec = pipeline.RunConfigSearch();
  ASSERT_TRUE(rec.has_value());
  ASSERT_FALSE(proposed.empty());
  const auto decoded = Measurement::Decode(proposed.back());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(static_cast<int>(decoded->kind),
            static_cast<int>(MeasurementKind::kConfigProposal));
  EXPECT_TRUE(decoded->VerifySig(keys));
}

}  // namespace
}  // namespace optilog
