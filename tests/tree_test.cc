#include <gtest/gtest.h>

#include "src/core/measurement.h"
#include "src/net/geo.h"
#include "src/tree/kauri.h"
#include "src/tree/topology.h"
#include "src/tree/tree_score.h"
#include "src/tree/tree_space.h"

namespace optilog {
namespace {

LatencyMatrix UniformMatrix(uint32_t n, double rtt_ms) {
  LatencyMatrix m(n);
  for (ReplicaId a = 0; a < n; ++a) {
    for (ReplicaId b = 0; b < n; ++b) {
      if (a != b) {
        m.Record(a, b, rtt_ms);
      }
    }
  }
  return m;
}

LatencyMatrix GeoMatrix(const std::vector<City>& cities) {
  const auto rtts = RttMatrixMs(cities);
  LatencyMatrix m(static_cast<uint32_t>(cities.size()));
  for (ReplicaId a = 0; a < cities.size(); ++a) {
    for (ReplicaId b = 0; b < cities.size(); ++b) {
      if (a != b) {
        m.Record(a, b, rtts[a][b]);
      }
    }
  }
  return m;
}

TEST(BranchFactor, MatchesPaperSizes) {
  // §7.3: b = (sqrt(4n-3)-1)/2; paper sizes and their branch factors.
  EXPECT_EQ(BranchFactorFor(13), 3u);
  EXPECT_EQ(BranchFactorFor(21), 4u);
  EXPECT_EQ(BranchFactorFor(43), 6u);
  EXPECT_EQ(BranchFactorFor(57), 7u);
  EXPECT_EQ(BranchFactorFor(73), 8u);
  EXPECT_EQ(BranchFactorFor(91), 9u);
  EXPECT_EQ(BranchFactorFor(111), 10u);
  EXPECT_EQ(BranchFactorFor(157), 12u);
  EXPECT_EQ(BranchFactorFor(183), 13u);
  EXPECT_EQ(BranchFactorFor(211), 14u);
}

TEST(TreeTopology, BuildFig5Tree) {
  // Fig. 5: n = 13, b = 3: root R, I1..I3, T1..T9.
  std::vector<ReplicaId> internals{0, 1, 2, 3};
  std::vector<ReplicaId> leaves{4, 5, 6, 7, 8, 9, 10, 11, 12};
  const TreeTopology t = TreeTopology::Build(internals, leaves);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.intermediates().size(), 3u);
  EXPECT_EQ(t.size(), 13u);
  for (ReplicaId inter : t.intermediates()) {
    EXPECT_EQ(t.ChildrenOf(inter).size(), 3u);
    EXPECT_EQ(t.ParentOf(inter), 0u);
    EXPECT_TRUE(t.IsIntermediate(inter));
    EXPECT_TRUE(t.IsInternal(inter));
  }
  for (ReplicaId leaf : leaves) {
    EXPECT_TRUE(t.IsLeaf(leaf));
    EXPECT_TRUE(t.IsIntermediate(t.ParentOf(leaf)));
  }
}

TEST(TreeTopology, ConfigRoundTrip) {
  std::vector<ReplicaId> internals{5, 2, 9, 0};
  std::vector<ReplicaId> leaves{1, 3, 4, 6, 7, 8, 10, 11, 12};
  const TreeTopology t = TreeTopology::Build(internals, leaves);
  const TreeTopology back = TreeTopology::FromConfig(t.ToConfig());
  EXPECT_EQ(back.root(), t.root());
  EXPECT_EQ(back.size(), t.size());
  for (ReplicaId id = 0; id < 13; ++id) {
    EXPECT_EQ(back.ParentOf(id), t.ParentOf(id)) << id;
  }
  std::vector<ReplicaId> a = t.Internals(), b = back.Internals();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(TreeTopology, StarHasNoIntermediates) {
  const TreeTopology star = TreeTopology::Build({3}, {0, 1, 2, 4});
  EXPECT_EQ(star.root(), 3u);
  EXPECT_TRUE(star.intermediates().empty());
  EXPECT_EQ(star.ChildrenOf(3).size(), 4u);
}

TEST(TreeTopology, UnevenLeavesDistributedRoundRobin) {
  // n = 12 with 4 internals: 8 leaves over 3 intermediates -> 3/3/2.
  const TreeTopology t =
      TreeTopology::Build({0, 1, 2, 3}, {4, 5, 6, 7, 8, 9, 10, 11});
  size_t total = 0;
  for (ReplicaId inter : t.intermediates()) {
    const size_t c = t.ChildrenOf(inter).size();
    EXPECT_GE(c, 2u);
    EXPECT_LE(c, 3u);
    total += c;
  }
  EXPECT_EQ(total, 8u);
}

TEST(TreeScore, UniformMatrixKnownValue) {
  // Uniform RTT r: every subtree aggregate arrives at Lagg + L(I,R) = 2r.
  const LatencyMatrix m = UniformMatrix(13, 10.0);
  const TreeTopology t = TreeTopology::Build({0, 1, 2, 3},
                                             {4, 5, 6, 7, 8, 9, 10, 11, 12});
  EXPECT_DOUBLE_EQ(TreeScore(t, m, 9), 20.0);
  // k = 1: root's own vote suffices.
  EXPECT_DOUBLE_EQ(TreeScore(t, m, 1), 0.0);
}

TEST(TreeScore, PrefersFastSubtrees) {
  // Two intermediates: one fast (RTT 10), one slow (RTT 100). Collecting
  // k <= coverage(fast subtree) + 1 votes should not touch the slow one.
  LatencyMatrix m = UniformMatrix(7, 10.0);
  // Intermediate 2 and its children are slow.
  for (ReplicaId other = 0; other < 7; ++other) {
    if (other != 2) {
      m.Record(2, other, 100.0);
      m.Record(other, 2, 100.0);
    }
  }
  const TreeTopology t = TreeTopology::Build({0, 1, 2}, {3, 4, 5, 6});
  // Subtree of 1 covers {1, 3, 5} = 3 nodes; +root = 4 votes at 20 ms.
  EXPECT_DOUBLE_EQ(TreeScore(t, m, 4), 20.0);
  // Needing more forces the slow subtree: 100 (child) + 100 (to root).
  EXPECT_DOUBLE_EQ(TreeScore(t, m, 6), 200.0);
}

TEST(TreeScore, InfiniteWhenNotEnoughCoverage) {
  const LatencyMatrix m = UniformMatrix(5, 10.0);
  const TreeTopology t = TreeTopology::Build({0, 1}, {2, 3, 4});
  // Subtree of 1 covers 4 nodes; +root = 5 = n, so k = 6 is impossible.
  EXPECT_TRUE(std::isinf(TreeScore(t, m, 6)));
}

TEST(TreeScore, StarUsesDirectVotes) {
  const LatencyMatrix m = UniformMatrix(5, 10.0);
  const TreeTopology star = TreeTopology::Build({0}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(TreeScore(star, m, 3), 10.0);
  EXPECT_TRUE(std::isinf(TreeScore(star, m, 6)));
}

TEST(TreeScore, MonotoneInK) {
  const LatencyMatrix m = GeoMatrix(Europe21());
  Rng rng(4);
  const TreeTopology t = RandomTree(21, rng);
  double prev = 0.0;
  for (uint32_t k = 1; k <= 21; ++k) {
    const double s = TreeScore(t, m, k);
    EXPECT_GE(s, prev) << "k=" << k;
    prev = s;
  }
}

TEST(TreeScore, TimeoutsSatisfyLemma6Ordering) {
  // TR2 chain: propose <= forward <= vote <= (aggregate covers its children).
  const LatencyMatrix m = GeoMatrix(Europe21());
  Rng rng(4);
  const TreeTopology t = RandomTree(21, rng);
  for (ReplicaId inter : t.intermediates()) {
    const double d_prop = TreeProposeTimeoutMs(t, m, inter);
    EXPECT_GT(d_prop, 0.0);
    const double d_agg = TreeAggregateTimeoutMs(t, m, inter);
    for (ReplicaId leaf : t.ChildrenOf(inter)) {
      const double d_fwd = TreeForwardTimeoutMs(t, m, leaf);
      const double d_vote = TreeVoteTimeoutMs(t, m, leaf);
      EXPECT_GE(d_fwd, d_prop);
      EXPECT_GE(d_vote, d_fwd);
      // The aggregate waits for the slowest child vote round-trip.
      EXPECT_GE(d_agg + 1e-9,
                d_prop + AggregationLatencyMs(t, m, inter));
    }
  }
}

TEST(TreeScore, DRndEqualsScoreAtQPlusU) {
  const LatencyMatrix m = GeoMatrix(Europe21());
  Rng rng(4);
  const TreeTopology t = RandomTree(21, rng);
  EXPECT_DOUBLE_EQ(TreeRoundDurationMs(t, m, 15, 2), TreeScore(t, m, 17));
}

TEST(TreeSpace, RandomConfigsValidAndComplete) {
  TreeConfigSpace space(21, 15);
  CandidateSet k;
  for (ReplicaId id = 0; id < 21; ++id) {
    k.candidates.push_back(id);
  }
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const RoleConfig cfg = space.RandomConfig(k, rng);
    EXPECT_TRUE(space.Valid(cfg, k));
    const TreeTopology t = TreeTopology::FromConfig(cfg);
    EXPECT_EQ(t.size(), 21u);
    EXPECT_EQ(t.Internals().size(), 5u);  // b + 1 = 5
  }
}

TEST(TreeSpace, MutateKeepsInternalsInCandidateSet) {
  TreeConfigSpace space(21, 15);
  CandidateSet k;
  for (ReplicaId id = 0; id < 15; ++id) {  // only 0..14 are candidates
    k.candidates.push_back(id);
  }
  Rng rng(8);
  RoleConfig cfg = space.RandomConfig(k, rng);
  for (int i = 0; i < 200; ++i) {
    cfg = space.Mutate(cfg, k, rng);
    ASSERT_TRUE(space.Valid(cfg, k)) << "iteration " << i;
  }
}

TEST(TreeSpace, RejectsInternalOutsideK) {
  TreeConfigSpace space(13, 9);
  CandidateSet k;
  for (ReplicaId id = 0; id < 12; ++id) {
    k.candidates.push_back(id);  // 12 is NOT a candidate
  }
  const TreeTopology t =
      TreeTopology::Build({12, 1, 2, 3}, {0, 4, 5, 6, 7, 8, 9, 10, 11});
  EXPECT_FALSE(space.Valid(t.ToConfig(), k));
}

TEST(Kauri, BinsAreDisjointAndCoverInternals) {
  KauriScheduler sched(21, 3);
  // i = b + 1 = 5 internals, t = 21 / 5 = 4 bins.
  EXPECT_EQ(sched.num_bins(), 4u);
  std::set<ReplicaId> seen;
  for (uint32_t bin = 0; bin < 4; ++bin) {
    auto tree = sched.NextTree();
    ASSERT_TRUE(tree.has_value());
    const auto internals = tree->Internals();
    EXPECT_EQ(internals.size(), 5u);
    for (ReplicaId id : internals) {
      EXPECT_TRUE(seen.insert(id).second) << "replica " << id << " in two bins";
    }
    EXPECT_EQ(tree->size(), 21u);
  }
  EXPECT_FALSE(sched.NextTree().has_value());  // bins exhausted
}

TEST(Kauri, StarFallbackIsFullStar) {
  KauriScheduler sched(21, 3);
  const TreeTopology star = sched.StarFallback();
  EXPECT_TRUE(star.intermediates().empty());
  EXPECT_EQ(star.ChildrenOf(star.root()).size(), 20u);
}

TEST(Kauri, FaultFreeBinExistsWhenFLessThanT) {
  // t-Bounded Conformity: with f < t faults, at least one bin is clean.
  KauriScheduler sched(21, 9);
  const std::set<ReplicaId> faulty{0, 1, 2};  // f = 3 < t = 4
  int clean_bins = 0;
  while (auto tree = sched.NextTree()) {
    bool clean = true;
    for (ReplicaId id : tree->Internals()) {
      if (faulty.count(id) > 0) {
        clean = false;
      }
    }
    clean_bins += clean;
  }
  EXPECT_GE(clean_bins, 1);
}

TEST(KauriSa, BurnsFailedInternals) {
  const LatencyMatrix m = GeoMatrix(Europe21());
  KauriSaScheduler sched(21, 5, 16, 77);
  AnnealingParams params;
  params.max_iterations = 300;
  auto first = sched.NextTree(m, params);
  ASSERT_TRUE(first.has_value());
  sched.BurnInternals(*first);
  EXPECT_EQ(sched.burned().size(), 5u);
  auto second = sched.NextTree(m, params);
  ASSERT_TRUE(second.has_value());
  for (ReplicaId id : second->Internals()) {
    EXPECT_EQ(sched.burned().count(id), 0u);
  }
  // Burning everything eventually exhausts candidates.
  for (int i = 0; i < 10; ++i) {
    auto t = sched.NextTree(m, params);
    if (!t.has_value()) {
      break;
    }
    sched.BurnInternals(*t);
  }
  EXPECT_FALSE(sched.NextTree(m, params).has_value());
}

TEST(AnnealTree, BeatsRandomTreeOnGeoMatrix) {
  const LatencyMatrix m = GeoMatrix(Global73());
  std::vector<ReplicaId> all(73);
  for (ReplicaId id = 0; id < 73; ++id) {
    all[id] = id;
  }
  Rng rng(123);
  double random_score = 0, annealed_score = 0;
  const uint32_t k = 49;  // q = n - f
  for (int trial = 0; trial < 5; ++trial) {
    random_score += TreeScore(RandomTree(73, rng), m, k);
    AnnealingParams params;
    params.max_iterations = 2000;
    annealed_score += TreeScore(AnnealTree(73, all, m, k, rng, params), m, k);
  }
  EXPECT_LT(annealed_score, random_score * 0.8)
      << "SA should find markedly better trees than random selection";
}

class TreeSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TreeSizeSweep, RandomTreeWellFormed) {
  const uint32_t n = GetParam();
  Rng rng(n);
  const TreeTopology t = RandomTree(n, rng);
  EXPECT_EQ(t.size(), n);
  const uint32_t b = BranchFactorFor(n);
  EXPECT_EQ(t.Internals().size(), b + 1);
  // Every replica reachable: root + intermediates + leaves == n.
  size_t leaves = 0;
  for (ReplicaId inter : t.intermediates()) {
    leaves += t.ChildrenOf(inter).size();
  }
  EXPECT_EQ(1 + t.intermediates().size() + leaves, n);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, TreeSizeSweep,
                         ::testing::Values(13, 21, 43, 56, 57, 73, 91, 111, 157,
                                           183, 211));

}  // namespace
}  // namespace optilog
