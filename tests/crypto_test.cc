#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/crypto/quorum_cert.h"
#include "src/crypto/sha256.h"
#include "src/crypto/signature.h"

namespace optilog {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) {
    h.Update(std::string(1, c));
  }
  EXPECT_EQ(h.Finish(), Sha256::Hash(msg));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding edge cases around the 56/64-byte boundary.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 h;
    h.Update(msg);
    const Digest one = h.Finish();
    Sha256 h2;
    h2.Update(msg.substr(0, len / 2));
    h2.Update(msg.substr(len / 2));
    EXPECT_EQ(one, h2.Finish()) << "len=" << len;
  }
}

TEST(Sha256, Prefix64Deterministic) {
  const Digest d = Sha256::Hash(std::string("x"));
  EXPECT_EQ(DigestPrefix64(d), DigestPrefix64(d));
  EXPECT_NE(DigestPrefix64(d), DigestPrefix64(Sha256::Hash(std::string("y"))));
}

TEST(Hmac, Rfc4231Case1) {
  // RFC 4231 test case 1: key = 20 x 0x0b, data = "Hi There".
  Bytes key(20, 0x0b);
  Bytes data{'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'};
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  // Key "Jefe", data "what do ya want for nothing?".
  Bytes key{'J', 'e', 'f', 'e'};
  const std::string s = "what do ya want for nothing?";
  Bytes data(s.begin(), s.end());
  EXPECT_EQ(DigestHex(HmacSha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  Bytes long_key(200, 0xaa);
  Bytes data{'m', 's', 'g'};
  // Must not crash and must be deterministic.
  EXPECT_EQ(HmacSha256(long_key, data), HmacSha256(long_key, data));
}

TEST(Signature, SignVerifyRoundTrip) {
  KeyStore keys(4, 1);
  const Bytes msg{1, 2, 3, 4};
  for (ReplicaId id = 0; id < 4; ++id) {
    const Signature sig = keys.Sign(id, msg);
    EXPECT_EQ(sig.signer, id);
    EXPECT_TRUE(keys.Verify(sig, msg));
  }
}

TEST(Signature, WrongMessageFails) {
  KeyStore keys(4, 1);
  const Signature sig = keys.Sign(0, Bytes{1, 2, 3});
  EXPECT_FALSE(keys.Verify(sig, Bytes{1, 2, 4}));
}

TEST(Signature, WrongSignerClaimFails) {
  KeyStore keys(4, 1);
  Signature sig = keys.Sign(0, Bytes{9});
  sig.signer = 1;  // claim someone else's identity
  EXPECT_FALSE(keys.Verify(sig, Bytes{9}));
}

TEST(Signature, ForgeFailsVerification) {
  KeyStore keys(4, 1);
  const Signature forged = keys.Forge(2);
  EXPECT_EQ(forged.signer, 2u);
  EXPECT_FALSE(keys.Verify(forged, Bytes{1}));
}

TEST(Signature, OutOfRangeSignerFails) {
  KeyStore keys(4, 1);
  Signature sig = keys.Sign(0, Bytes{1});
  sig.signer = 99;
  EXPECT_FALSE(keys.Verify(sig, Bytes{1}));
}

TEST(Signature, DifferentSeedsDifferentKeys) {
  KeyStore a(2, 1), b(2, 2);
  const Bytes msg{5};
  EXPECT_NE(a.Sign(0, msg).bytes, b.Sign(0, msg).bytes);
}

TEST(Signature, SerializeRoundTrip) {
  KeyStore keys(2, 1);
  const Signature sig = keys.Sign(1, Bytes{1, 2});
  Bytes buf;
  ByteWriter w(&buf);
  sig.Serialize(w);
  EXPECT_EQ(buf.size(), Signature::kWireSize);
  ByteReader r(buf);
  EXPECT_EQ(Signature::Deserialize(r), sig);
}

TEST(QuorumCert, AggregateAndVerify) {
  KeyStore keys(7, 3);
  const Digest d = Sha256::Hash(std::string("block"));
  std::vector<Signature> shares;
  for (ReplicaId id : {0u, 2u, 4u, 5u, 6u}) {
    shares.push_back(keys.Sign(id, d));
  }
  const QuorumCert qc = QuorumCert::Aggregate(d, shares, keys);
  EXPECT_EQ(qc.num_signers(), 5u);
  EXPECT_TRUE(qc.Verify(keys));
  EXPECT_TRUE(qc.Contains(4));
  EXPECT_FALSE(qc.Contains(1));
}

TEST(QuorumCert, CorruptedAggregateFails) {
  KeyStore keys(4, 3);
  const Digest d = Sha256::Hash(std::string("b"));
  QuorumCert qc = QuorumCert::Aggregate(d, {keys.Sign(0, d), keys.Sign(1, d)}, keys);
  qc.Corrupt();
  EXPECT_FALSE(qc.Verify(keys));
}

TEST(QuorumCert, DuplicateSignersDeduplicated) {
  KeyStore keys(4, 3);
  const Digest d = Sha256::Hash(std::string("b"));
  const QuorumCert qc =
      QuorumCert::Aggregate(d, {keys.Sign(0, d), keys.Sign(0, d), keys.Sign(1, d)}, keys);
  EXPECT_EQ(qc.num_signers(), 2u);
  EXPECT_TRUE(qc.Verify(keys));
}

TEST(QuorumCert, SerializeRoundTrip) {
  KeyStore keys(5, 3);
  const Digest d = Sha256::Hash(std::string("blk"));
  const QuorumCert qc =
      QuorumCert::Aggregate(d, {keys.Sign(1, d), keys.Sign(3, d)}, keys);
  Bytes buf;
  ByteWriter w(&buf);
  qc.Serialize(w);
  EXPECT_EQ(buf.size(), qc.WireSize());
  ByteReader r(buf);
  const QuorumCert back = QuorumCert::Deserialize(r);
  EXPECT_EQ(back, qc);
  EXPECT_TRUE(back.Verify(keys));
}

TEST(QuorumCert, SignerListIsBound) {
  // Dropping a signer from the list must break the aggregate.
  KeyStore keys(5, 3);
  const Digest d = Sha256::Hash(std::string("blk"));
  const QuorumCert qc =
      QuorumCert::Aggregate(d, {keys.Sign(1, d), keys.Sign(3, d)}, keys);
  Bytes buf;
  ByteWriter w(&buf);
  qc.Serialize(w);
  // Tamper: change signer 3 to signer 2 in the serialized form.
  // Layout: 32 digest + 4 count + 4 (id=1) + 4 (id=3).
  buf[32 + 4 + 4] = 2;
  ByteReader r(buf);
  EXPECT_FALSE(QuorumCert::Deserialize(r).Verify(keys));
}

class QuorumSizes : public ::testing::TestWithParam<int> {};

TEST_P(QuorumSizes, VerifiesAtAllSizes) {
  const int n = GetParam();
  KeyStore keys(n, 77);
  const Digest d = Sha256::Hash(std::string("sz"));
  std::vector<Signature> shares;
  for (int id = 0; id < n; ++id) {
    shares.push_back(keys.Sign(id, d));
  }
  const QuorumCert qc = QuorumCert::Aggregate(d, shares, keys);
  EXPECT_EQ(qc.num_signers(), static_cast<size_t>(n));
  EXPECT_TRUE(qc.Verify(keys));
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuorumSizes, ::testing::Values(1, 4, 7, 22, 73));

// The layered HMAC fast paths — precomputed key schedule, single-block
// short-message form — must be byte-identical to the plain streaming HMAC
// at every length they claim to cover.
TEST(Hmac, ScheduleAndShortPathsMatchStreaming) {
  const Bytes key(32, 0x42);
  const HmacKeySchedule ks = HmacPrecompute(key);
  for (size_t len : {size_t{0}, size_t{1}, size_t{32}, size_t{54}, size_t{55},
                     size_t{56}, size_t{64}, size_t{200}}) {
    Bytes msg(len);
    for (size_t i = 0; i < len; ++i) {
      msg[i] = static_cast<uint8_t>(i * 31 + 7);
    }
    const Digest ref = HmacSha256(key, msg);
    EXPECT_EQ(HmacSha256(ks, msg.data(), msg.size()), ref) << "len=" << len;
    if (len <= 55) {
      EXPECT_EQ(HmacSha256Short(ks, msg.data(), msg.size()), ref)
          << "len=" << len;
    }
  }
}

TEST(Signature, ShortPathMatchesLongMessagePath) {
  // Sign() over a 54-byte message takes the stack fast path, 55+ the
  // streaming path; both must agree with a from-scratch computation of
  // HMAC(m) || HMAC(m || 0x01).
  KeyStore keys(2, 9);
  for (size_t len : {size_t{32}, size_t{54}, size_t{55}, size_t{100}}) {
    Bytes msg(len, 0x5a);
    const Signature sig = keys.Sign(1, msg);
    EXPECT_TRUE(keys.Verify(sig, msg));
    // KeyStore secrets are private; cross-check the two halves against each
    // other instead: first half is HMAC(m), second HMAC(m || 0x01), so
    // signing `ext` must reproduce the second half as ITS first half.
    Bytes ext = msg;
    ext.push_back(0x01);
    const Signature sig_ext = keys.Sign(1, ext);
    EXPECT_TRUE(std::equal(sig.bytes.begin() + 32, sig.bytes.end(),
                           sig_ext.bytes.begin()));
  }
}

}  // namespace
}  // namespace optilog
