// Tests for the slab-backed event core: exact pending() accounting under
// Cancel/Step/RunUntil interleavings, generation-checked cancellation
// across slot reuse, typed delivery/timer lanes, and the determinism
// invariant that same-instant events run in scheduling order regardless of
// event kind.
#include <gtest/gtest.h>

#include "src/api/deployment.h"
#include "src/net/fault_model.h"
#include "src/net/latency_model.h"
#include "src/net/network.h"
#include "src/runner/scenario.h"
#include "src/sim/simulator.h"

namespace optilog {
namespace {

struct NullMsg : Message {
  int type() const override { return 0; }
  MsgFamily family() const override { return MsgFamily::kWorkload; }
  void EncodeTo(ByteWriter& w) const override { w.ZeroPad(16); }
  std::string Name() const override { return "Null"; }
};

class TagRecorder : public TimerTarget {
 public:
  void OnTimer(uint64_t tag, SimTime at) override {
    fired.emplace_back(tag, at);
  }
  std::vector<std::pair<uint64_t, SimTime>> fired;
};

class CountingActor : public Actor {
 public:
  void OnMessage(ReplicaId from, const MessagePtr& msg, SimTime at) override {
    (void)from;
    (void)msg;
    (void)at;
    ++deliveries;
  }
  int deliveries = 0;
};

// --- pending() accounting (regression for the tombstone-window bug) ----------

TEST(EventSlab, PendingExactUnderCancelStepRunUntilInterleaving) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.ScheduleAt(10 * (i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending(), 8u);

  // Cancel two events whose queue keys are still buried in the heap. The
  // old design counted these via a tombstone set subtracted from the queue
  // size, which went stale once a cancelled key was popped.
  sim.Cancel(ids[2]);
  sim.Cancel(ids[5]);
  EXPECT_EQ(sim.pending(), 6u);

  ASSERT_TRUE(sim.Step());  // runs ids[0]
  EXPECT_EQ(sim.pending(), 5u);

  // RunUntil past the cancelled ids[2] key: popping the stale key must not
  // change the live count twice.
  sim.RunUntil(40);  // runs ids[1], ids[3]
  EXPECT_EQ(sim.pending(), 3u);

  // Cancel between a pop window and the next run; then interleave again.
  sim.Cancel(ids[6]);
  EXPECT_EQ(sim.pending(), 2u);
  ASSERT_TRUE(sim.Step());  // runs ids[4]
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntil(200);  // skips ids[5], ids[6] keys; runs ids[7]
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 5u);

  // Cancelling everything that already ran or was cancelled is a no-op.
  for (EventId id : ids) {
    sim.Cancel(id);
  }
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EventSlab, PendingCountsEventsScheduledDuringExecution) {
  Simulator sim;
  sim.ScheduleAt(10, [&] {
    sim.ScheduleAfter(5, [] {});
    sim.ScheduleAfter(6, [] {});
  });
  EXPECT_EQ(sim.pending(), 1u);
  sim.Step();
  EXPECT_EQ(sim.pending(), 2u);
  sim.RunAll();
  EXPECT_EQ(sim.pending(), 0u);
}

// --- generation checks across slot reuse -------------------------------------

TEST(EventSlab, StaleCancelDoesNotKillRecycledSlot) {
  Simulator sim;
  bool first = false, second = false;
  const EventId a = sim.ScheduleAt(10, [&] { first = true; });
  sim.Cancel(a);
  // The slab reuses a's slot for b under a new generation.
  const EventId b = sim.ScheduleAt(20, [&] { second = true; });
  EXPECT_NE(a, b);
  sim.Cancel(a);  // stale handle: must be a no-op
  sim.RunAll();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventSlab, CancelAfterExecutionDoesNotKillRecycledSlot) {
  Simulator sim;
  int runs = 0;
  const EventId a = sim.ScheduleAt(10, [&] { ++runs; });
  sim.RunUntil(15);
  EXPECT_EQ(runs, 1);
  const EventId b = sim.ScheduleAt(20, [&] { ++runs; });
  sim.Cancel(a);  // a already ran; its slot now hosts b
  sim.RunAll();
  EXPECT_EQ(runs, 2);
  (void)b;
}

TEST(EventSlab, SlabReusesSlotsInsteadOfGrowing) {
  Simulator sim;
  // A ping-pong chain of depth 1 keeps at most two events live; the slab
  // must stay tiny no matter how many events pass through.
  for (int i = 0; i < 1000; ++i) {
    sim.ScheduleAfter(i + 1, [] {});
    sim.RunFor(i + 1);
  }
  EXPECT_EQ(sim.events_executed(), 1000u);
  EXPECT_LE(sim.event_core_stats().peak_slab_slots, 4u);
  EXPECT_LE(sim.event_core_stats().peak_pending, 4u);
}

// --- typed lanes -------------------------------------------------------------

TEST(EventSlab, TypedTimerCarriesTagAndFireTime) {
  Simulator sim;
  TagRecorder target;
  sim.ScheduleTimer(&target, 7, 100);
  sim.ScheduleTimerAt(50, &target, 9);
  sim.RunAll();
  ASSERT_EQ(target.fired.size(), 2u);
  EXPECT_EQ(target.fired[0], (std::pair<uint64_t, SimTime>{9, 50}));
  EXPECT_EQ(target.fired[1], (std::pair<uint64_t, SimTime>{7, 100}));
  EXPECT_EQ(sim.event_core_stats().typed_timers, 2u);
  EXPECT_EQ(sim.event_core_stats().closure_events, 0u);
}

TEST(EventSlab, CancelledTimerDoesNotFire) {
  Simulator sim;
  TagRecorder target;
  const EventId id = sim.ScheduleTimer(&target, 1, 10);
  sim.ScheduleTimer(&target, 2, 20);
  sim.Cancel(id);
  sim.RunAll();
  ASSERT_EQ(target.fired.size(), 1u);
  EXPECT_EQ(target.fired[0].first, 2u);
  EXPECT_EQ(sim.event_core_stats().cancellations, 1u);
}

TEST(EventSlab, MixedKindTiesRunInScheduleOrder) {
  Simulator sim;
  MatrixLatencyModel latency(2, /*one_way=*/50);
  FaultModel faults;
  Network net(&sim, &latency, &faults);

  std::vector<int> order;
  class OrderActor : public Actor {
   public:
    explicit OrderActor(std::vector<int>* order) : order_(order) {}
    void OnMessage(ReplicaId, const MessagePtr&, SimTime) override {
      order_->push_back(2);
    }

   private:
    std::vector<int>* order_;
  };
  class OrderTimer : public TimerTarget {
   public:
    explicit OrderTimer(std::vector<int>* order) : order_(order) {}
    void OnTimer(uint64_t, SimTime) override { order_->push_back(3); }

   private:
    std::vector<int>* order_;
  };
  OrderActor actor(&order);
  OrderTimer timer(&order);
  net.Register(1, &actor);

  // All three land at t = 50: closure scheduled first, then the delivery,
  // then the timer. Scheduling order must win regardless of kind.
  sim.ScheduleAt(50, [&] { order.push_back(1); });
  net.Send(0, 1, MakeMessage<NullMsg>());  // one-way = 50
  sim.ScheduleTimerAt(50, &timer, 0);
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventSlab, DeliveryPathSchedulesNoClosures) {
  Simulator sim;
  MatrixLatencyModel latency(4, kMsec);
  FaultModel faults;
  Network net(&sim, &latency, &faults);
  CountingActor a1, a2, a3;
  net.Register(1, &a1);
  net.Register(2, &a2);
  net.Register(3, &a3);

  auto msg = MakeMessage<NullMsg>();
  net.Multicast(0, {1, 2, 3}, msg);
  net.Send(0, 1, msg);
  sim.RunAll();

  const EventCoreStats& stats = sim.event_core_stats();
  EXPECT_EQ(stats.typed_deliveries, 4u);
  EXPECT_EQ(stats.closure_events, 0u);
  EXPECT_EQ(stats.allocations_avoided(), 4u);
  EXPECT_EQ(stats.events_executed, 4u);
  EXPECT_EQ(a1.deliveries, 2);
  EXPECT_EQ(a2.deliveries, 1);
  EXPECT_EQ(a3.deliveries, 1);
}

TEST(EventSlab, MulticastSharesOneMessageInstance) {
  Simulator sim;
  MatrixLatencyModel latency(4, kMsec);
  FaultModel faults;
  Network net(&sim, &latency, &faults);

  class PointerRecorder : public Actor {
   public:
    void OnMessage(ReplicaId, const MessagePtr& msg, SimTime) override {
      seen.push_back(msg.get());
    }
    std::vector<const Message*> seen;
  };
  PointerRecorder r1, r2, r3;
  net.Register(1, &r1);
  net.Register(2, &r2);
  net.Register(3, &r3);

  auto msg = MakeMessage<NullMsg>();
  const Message* raw = msg.get();
  net.Multicast(0, {1, 2, 3}, std::move(msg));
  sim.RunAll();
  ASSERT_EQ(r1.seen.size(), 1u);
  EXPECT_EQ(r1.seen[0], raw);
  EXPECT_EQ(r2.seen[0], raw);
  EXPECT_EQ(r3.seen[0], raw);
}

// --- time-wheel scheduler ----------------------------------------------------

// 64 µs buckets, 1 << 14 of them: ticks past ~1.05 s of simulated time from
// the cursor land in the overflow heap.
constexpr SimTime kBucketUs = 64;
constexpr SimTime kWheelHorizon = kBucketUs << 14;

TEST(TimeWheel, SameInstantSeqOrderAcrossBucketBoundaries) {
  // Same-instant events must run in scheduling order even when neighboring
  // instants straddle a bucket boundary (63 and 64 hash to different
  // buckets; two events at 64 share a chain).
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(kBucketUs, [&] { order.push_back(0); });
  sim.ScheduleAt(kBucketUs - 1, [&] { order.push_back(1); });
  sim.ScheduleAt(kBucketUs, [&] { order.push_back(2); });
  sim.ScheduleAt(kBucketUs + 1, [&] { order.push_back(3); });
  sim.ScheduleAt(kBucketUs - 1, [&] { order.push_back(4); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 4, 0, 2, 3}));
}

TEST(TimeWheel, CancelThenReuseSlotInsideBucketChain) {
  // Cancelling a wheel-resident event unlinks it from the middle of its
  // bucket chain and recycles the slot immediately; a later schedule that
  // reuses the slot must not corrupt the chain or fire twice.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(0); });
  const EventId victim = sim.ScheduleAt(100, [&] { order.push_back(99); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.Cancel(victim);
  EXPECT_EQ(sim.pending(), 2u);
  // Same instant, same bucket: lands in the slot the cancel freed.
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(TimeWheel, OverflowHeapMigratesIntoWheel) {
  Simulator sim;
  std::vector<int> order;
  // Beyond the horizon from tick 0: parked in the overflow heap.
  sim.ScheduleAt(kWheelHorizon + 5 * kBucketUs, [&] { order.push_back(1); });
  sim.ScheduleAt(2 * kWheelHorizon, [&] { order.push_back(2); });
  EXPECT_EQ(sim.event_core_stats().wheel_overflow_events, 2u);
  // Near event: straight into the wheel.
  sim.ScheduleAt(10, [&] { order.push_back(0); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), 2 * kWheelHorizon);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(TimeWheel, CancelledOverflowEventNotCountedAsExecuted) {
  // Overflow (and legacy-heap) cancels leave a stale generation-mismatched
  // key behind; skipping it at pop time must not increment
  // events_executed. Regression: the skip used to count as a run.
  Simulator sim;
  const EventId far = sim.ScheduleAt(kWheelHorizon + kBucketUs, [] {});
  sim.ScheduleAt(5, [] {});
  sim.Cancel(far);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(TimeWheel, HeapSchedulerCancelNotCountedAsExecuted) {
  Simulator sim;
  sim.UseHeapScheduler();
  const EventId victim = sim.ScheduleAt(50, [] {});
  sim.ScheduleAt(60, [] {});
  sim.Cancel(victim);
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(TimeWheel, ReserveHintPreallocatesSlab) {
  Simulator sim;
  sim.ReserveHint(256);
  const size_t cap = sim.slab_capacity();
  EXPECT_GE(cap, 256u);
  for (int i = 0; i < 200; ++i) {
    sim.ScheduleAt(i, [] {});
  }
  EXPECT_EQ(sim.slab_capacity(), cap);  // no growth under the hint
}

// --- cross-scheduler determinism ---------------------------------------------

// The wheel and the legacy binary heap must produce identical executions:
// same (time, seq) order, same slot recycling, same metrics fingerprint.
// Exercised over both protocol families so delivery, timer, cancel, and
// multicast paths all participate.

std::string FingerprintFor(Protocol proto, bool heap) {
  auto b = Deployment::Builder()
               .WithReplicas(7, 2)
               .WithProtocol(proto)
               .WithSeed(11);
  if (heap) {
    b.WithHeapScheduler();
  }
  auto d = b.Build();
  d->Start();
  d->RunUntil(3 * kSec);
  return MetricsFingerprint(d->Metrics());
}

TEST(TimeWheel, SchedulerParityKauri) {
  const std::string wheel = FingerprintFor(Protocol::kKauri, false);
  const std::string heap = FingerprintFor(Protocol::kKauri, true);
  EXPECT_FALSE(wheel.empty());
  EXPECT_EQ(wheel, heap);
}

TEST(TimeWheel, SchedulerParityPbft) {
  const std::string wheel = FingerprintFor(Protocol::kPbft, false);
  const std::string heap = FingerprintFor(Protocol::kPbft, true);
  EXPECT_FALSE(wheel.empty());
  EXPECT_EQ(wheel, heap);
}

}  // namespace
}  // namespace optilog
