// Parallel intra-deployment execution (src/shard/parallel_exec.*): the
// windowed conservative-lookahead driver must produce byte-identical
// MetricsFingerprints to the merged sequential driver at every
// --sim-threads value, over sharded deployments with cross-shard 2PC
// traffic, a coordinator crash + recovery mid-run, both protocol families,
// and the 1-shard degenerate case (which must keep the single shared
// simulator and never build an executor at all).
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/api/deployment.h"
#include "src/runner/scenario.h"
#include "src/shard/parallel_exec.h"
#include "src/shard/sharded_deployment.h"
#include "src/statemachine/state_machine.h"

namespace optilog {
namespace {

Deployment::Builder ParityBuilder(uint64_t seed, Protocol protocol) {
  WorkloadOptions w;
  w.arrival = ArrivalProcess::kClosedLoop;
  w.outstanding = 1;
  w.think_time = 10 * kMsec;
  w.batch.max_batch = 32;
  w.batch.max_delay = 10 * kMsec;
  StateMachineOptions sm;
  sm.checkpoint.interval = 64;
  sm.checkpoint.truncate = true;
  Deployment::Builder b;
  b.WithGeo(Europe21())
      .WithReplicas(7, 2)
      .WithProtocol(protocol)
      .WithSeed(seed)
      .WithWorkload(w)
      .WithStateMachine(sm);
  return b;
}

struct ParityRun {
  std::string fingerprint;
  MetricsReport metrics;
  bool windowed = false;
  uint32_t partitions = 0;
};

// One full sharded transaction run at the given thread count: two shards,
// 50% cross-shard 2PC. With crash_anchor, shard 0's anchor goes down
// mid-run (taking its coordinator down mid-2PC) and recovers through state
// transfer — the hardest case for the partitioned order, because recovery
// re-drives 2PC records across partitions.
ParityRun RunSharded(Protocol protocol, unsigned sim_threads,
                     bool crash_anchor) {
  TxnWorkloadOptions txn;
  txn.clients_per_shard = crash_anchor ? 6 : 4;
  txn.keys_per_txn = 2;
  txn.hot_pct = 20;
  // Crash runs keep maximum pressure so some 2PC is always in flight when
  // the anchor dies.
  txn.think_time = crash_anchor ? 0 : 5 * kMsec;
  txn.stop_at = crash_anchor ? 10 * kSec : 6 * kSec;

  auto sd = ParityBuilder(29, protocol)
                .WithShards(2)
                .WithCrossShardRatio(0.5)
                .WithTxnWorkload(txn)
                .WithSimThreads(sim_threads)
                .BuildSharded();
  if (crash_anchor) {
    const ReplicaId anchor = sd->Route(0);
    sd->shard(0).ScheduleCrash(anchor, 3 * kSec, 6 * kSec);
  }
  sd->Start();
  // Two run segments with a Metrics() call between them: the mid-flight
  // snapshot pins that both drivers agree at intermediate horizons (pending
  // queues included), not just after the drain.
  const SimTime mid_at = txn.stop_at;
  sd->RunUntil(mid_at);
  const MetricsReport mid = sd->Metrics();
  sd->RunUntil(2 * mid_at);

  ParityRun run;
  run.metrics = sd->Metrics();
  run.fingerprint =
      MetricsFingerprint(mid) + "|" + MetricsFingerprint(run.metrics);
  run.windowed = sd->executor() != nullptr && sd->executor()->parallel();
  run.partitions = sd->partitions();
  return run;
}

void ExpectParityAcrossThreadCounts(Protocol protocol, bool crash_anchor) {
  const ParityRun ref = RunSharded(protocol, 1, crash_anchor);
  EXPECT_FALSE(ref.windowed);  // <= 1 thread: merged sequential driver
  EXPECT_EQ(ref.partitions, 3u);  // 2 shard partitions + client partition
  EXPECT_GT(ref.metrics.txn.committed, 50u);
  EXPECT_GT(ref.metrics.txn.committed_cross, 5u);
  EXPECT_EQ(ref.metrics.txn.kv_mismatches, 0u);
  if (crash_anchor) {
    EXPECT_GE(ref.metrics.txn.recovered_commits + ref.metrics.txn.recovered_aborts,
              1u);
    EXPECT_EQ(ref.metrics.statemachine.recoveries_completed, 1u);
  }
  for (unsigned threads : {2u, 4u}) {
    const ParityRun run = RunSharded(protocol, threads, crash_anchor);
    EXPECT_TRUE(run.windowed) << "threads=" << threads;
    EXPECT_EQ(run.fingerprint, ref.fingerprint) << "threads=" << threads;
  }
}

TEST(ParallelParity, TreeFamilyCrossShardTxns) {
  ExpectParityAcrossThreadCounts(Protocol::kKauri, /*crash_anchor=*/false);
}

TEST(ParallelParity, PbftFamilyCrossShardTxns) {
  ExpectParityAcrossThreadCounts(Protocol::kPbft, /*crash_anchor=*/false);
}

TEST(ParallelParity, CoordinatorCrashAndRecovery) {
  ExpectParityAcrossThreadCounts(Protocol::kHotStuff, /*crash_anchor=*/true);
}

TEST(ParallelParity, NonTxnShardsHaveUnboundedLookahead) {
  auto run = [](unsigned threads) {
    auto sd = ParityBuilder(31, Protocol::kHotStuff)
                  .WithShards(4)
                  .WithSimThreads(threads)
                  .BuildSharded();
    sd->Start();
    sd->RunUntil(8 * kSec);
    EXPECT_EQ(sd->partitions(), 4u);  // no txn fleet -> no client partition
    return std::make_pair(MetricsFingerprint(sd->Metrics()),
                          sd->executor()->lookahead());
  };
  const auto seq = run(1);
  const auto par = run(4);
  // No transaction fleet -> no cross-partition edges at all: the windowed
  // driver gets the unbounded-lookahead sentinel and one window per RunUntil.
  EXPECT_EQ(seq.second, PartitionExecutor::kUnboundedLookahead);
  EXPECT_EQ(seq.first, par.first);
}

TEST(ParallelParity, OneShardStaysOnTheLegacyFastPath) {
  TxnWorkloadOptions txn;
  txn.clients_per_shard = 4;
  txn.keys_per_txn = 2;
  txn.think_time = 5 * kMsec;
  txn.stop_at = 4 * kSec;
  auto run = [&](unsigned threads) {
    auto sd = ParityBuilder(37, Protocol::kKauri)
                  .WithShards(1)
                  .WithTxnWorkload(txn)
                  .WithSimThreads(threads)
                  .BuildSharded();
    sd->Start();
    sd->RunUntil(8 * kSec);
    // Degenerate case: a single shard keeps the shared simulator and the
    // legacy event order whatever --sim-threads says.
    EXPECT_EQ(sd->partitions(), 1u);
    EXPECT_EQ(sd->executor(), nullptr);
    EXPECT_EQ(sd->Metrics().event_core.partitions, 1u);
    return MetricsFingerprint(sd->Metrics());
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace optilog
