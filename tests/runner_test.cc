// Scenario-runner subsystem: registry semantics, grid enumeration, JSON
// emission, the work-stealing pool, and the determinism contract (identical
// seeds -> byte-identical ScenarioResult JSON at any thread count).
#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/api/deployment.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"
#include "src/runner/thread_pool.h"

namespace optilog {
namespace {

// --- JsonWriter --------------------------------------------------------------

TEST(RunnerJson, WriterProducesCanonicalBytes) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"quoted\"\nvalue\t\\");
  w.Key("count").Uint(42);
  w.Key("neg").Int(-7);
  w.Key("ratio").Double(0.5);
  w.Key("flag").Bool(true);
  w.Key("list").BeginArray().Uint(1).Uint(2).EndArray();
  w.Key("empty").BeginObject().EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a \\\"quoted\\\"\\nvalue\\t\\\\\","
            "\"count\":42,\"neg\":-7,\"ratio\":0.5,\"flag\":true,"
            "\"list\":[1,2],\"empty\":{}}");
}

TEST(RunnerJson, ControlCharactersEscaped) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String(std::string{'a', '\x01', 'b'});
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\u0001b\"}");
}

// --- BenchReporter CSV (RFC 4180) -------------------------------------------

TEST(RunnerCsv, EscapesDelimitersQuotesAndNewlines) {
  EXPECT_EQ(BenchReporter::CsvEscape("plain"), "plain");
  EXPECT_EQ(BenchReporter::CsvEscape("Washington, DC"),
            "\"Washington, DC\"");
  EXPECT_EQ(BenchReporter::CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(BenchReporter::CsvEscape("two\nlines"), "\"two\nlines\"");

  BenchReporter r("cities", {"city", "ms"});
  r.AddRow({"Washington, DC", "12"});
  EXPECT_EQ(r.ToCsv(),
            "csv,cities,city,ms\n"
            "csv,cities,\"Washington, DC\",12\n");
}

// --- Params and grid enumeration ---------------------------------------------

TEST(RunnerParams, TypedGetters) {
  Params p;
  p.Set("geo", "Europe21").Set("n", "21").Set("delta", "1.5");
  EXPECT_TRUE(p.Has("geo"));
  EXPECT_FALSE(p.Has("nope"));
  EXPECT_EQ(p.Get("geo"), "Europe21");
  EXPECT_EQ(p.GetInt("n"), 21);
  EXPECT_DOUBLE_EQ(p.GetDouble("delta"), 1.5);
  EXPECT_EQ(p.Label(), "geo=Europe21 n=21 delta=1.5");
  p.Set("geo", "Global73");  // overwrite keeps position
  EXPECT_EQ(p.entries()[0].second, "Global73");
}

TEST(RunnerGrid, CartesianEnumerationOrder) {
  Scenario s;
  s.name = "grid";
  s.run = [](const Params&) { return PointResult{}; };
  s.grid = {{"a", {"1", "2"}}, {"b", {"x", "y", "z"}}};
  const auto points = EnumeratePoints(s);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].Label(), "a=1 b=x");
  EXPECT_EQ(points[1].Label(), "a=1 b=y");  // last axis fastest
  EXPECT_EQ(points[3].Label(), "a=2 b=x");
  EXPECT_EQ(points[5].Label(), "a=2 b=z");
}

TEST(RunnerGrid, EmptyGridIsOnePointAndExplicitPointsWin) {
  Scenario s;
  s.name = "single";
  s.run = [](const Params&) { return PointResult{}; };
  EXPECT_EQ(EnumeratePoints(s).size(), 1u);

  Params only;
  only.Set("k", "v");
  s.points = {only};
  s.grid = {{"ignored", {"1", "2"}}};
  const auto points = EnumeratePoints(s);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].Label(), "k=v");
}

// --- Registry ----------------------------------------------------------------

TEST(ScenarioRegistryTest, AllElevenBenchesPlusWorkloadsRegistered) {
  const auto& registry = ScenarioRegistry::Instance();
  // The former standalone binaries, now registrations (EXPERIMENTS.md),
  // plus the post-paper workloads (crash churn, saturation, bursty phases).
  for (const char* name :
       {"fig07_runtime_attack", "fig08_mis_scaling", "fig09_baselines",
        "fig10_suspicion_attack", "fig11_malicious_delay",
        "fig12_sa_search_time", "fig13_proposal_size", "fig14_overprovision",
        "fig15_reconfig_timeline", "ablation_candidate_policy",
        "ablation_u_estimate", "ablation_cooling", "scale_events",
        "crash_churn", "saturation", "bursty_phases"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Find("no_such_scenario"), nullptr);

  // All() is name-sorted (stable --list output).
  const auto all = registry.All();
  EXPECT_GE(all.size(), 16u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name, all[i]->name);
  }

  // The CI gate's selection is non-empty and every member carries the tag.
  const auto tier1 = registry.WithTag("tier1");
  EXPECT_GE(tier1.size(), 5u);
  for (const Scenario* s : tier1) {
    EXPECT_TRUE(s->HasTag("tier1")) << s->name;
  }
  EXPECT_TRUE(registry.WithTag("no_such_tag").empty());
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.threads(), 8u);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatchesAndFewerTasksThanWorkers) {
  ThreadPool pool(6);
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(3, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 6u);
  }
  std::atomic<int> none{0};
  pool.ParallelFor(0, [&](size_t) { none.fetch_add(1); });
  EXPECT_EQ(none.load(), 0);
}

TEST(ThreadPoolTest, InlineModeWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<size_t> order;
  pool.ParallelFor(4, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) {
                           throw std::runtime_error("boom");
                         }
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 63);
  // The pool survives a throwing batch.
  pool.ParallelFor(8, [&](size_t) { completed.fetch_add(1); });
  EXPECT_EQ(completed.load(), 71);
}

// --- Determinism contract ----------------------------------------------------

// A real multi-deployment sweep (Kauri, two sizes x two seeds). Small
// enough for a unit test, real enough to cover simulator, network, crypto,
// and metrics end to end.
Scenario MiniSweep() {
  Scenario s;
  s.name = "test_mini_sweep";
  s.columns = {"n", "seed", "committed", "events"};
  s.grid = {{"n", {"11", "17"}}, {"seed", {"5", "6"}}};
  // One shared base recipe; every grid point clones it concurrently from a
  // worker thread — the Builder::Clone() sweep pattern.
  TreeRsmOptions opts;
  opts.pipeline_depth = 2;
  Deployment::Builder base;
  base.WithProtocol(Protocol::kKauri).WithTreeOptions(opts);
  s.run = [base](const Params& p) {
    const uint32_t n = static_cast<uint32_t>(p.GetInt("n"));
    auto d = base.Clone()
                 .WithReplicas(n, (n - 1) / 3)
                 .WithSeed(static_cast<uint64_t>(p.GetInt("seed")))
                 .Build();
    d->Start();
    d->RunUntil(5 * kSec);
    const MetricsReport m = d->Metrics();
    PointResult pr;
    pr.rows.push_back({p.Get("n"), p.Get("seed"), std::to_string(m.committed),
                       std::to_string(m.event_core.events_executed)});
    pr.metrics = {{"committed", static_cast<double>(m.committed)},
                  {"latency_ms", m.mean_latency_ms}};
    pr.event_core = m.event_core;
    pr.event_core.wall_seconds = 0.0;
    pr.digest = MetricsFingerprint(m);
    return pr;
  };
  s.finalize = [](const std::vector<PointResult>& points) {
    SummaryTable t;
    t.columns = {"total_committed"};
    uint64_t total = 0;
    for (const PointResult& p : points) {
      total += static_cast<uint64_t>(p.metrics[0].second);
    }
    t.rows.push_back({std::to_string(total)});
    return t;
  };
  return s;
}

TEST(SweepDeterminismTest, ByteIdenticalJsonAcrossThreadCounts) {
  const Scenario s = MiniSweep();
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 8;
  const ScenarioRunResult a = RunScenario(s, serial);
  const ScenarioRunResult b = RunScenario(s, parallel);

  EXPECT_FALSE(a.digest.empty());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(DeterministicJson(a), DeterministicJson(b));
  // Per-point digests (the log-head / fingerprint pins) survive too.
  ASSERT_EQ(a.points.size(), 4u);
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_FALSE(a.points[i].digest.empty());
    EXPECT_EQ(a.points[i].digest, b.points[i].digest);
  }
  // The deterministic JSON never contains the advisory wall clock.
  EXPECT_EQ(DeterministicJson(a).find("wall"), std::string::npos);
  EXPECT_NE(FullJson(a).find("wall_ms"), std::string::npos);
}

TEST(SweepDeterminismTest, RegisteredTier1ChurnSweepIsThreadCountInvariant) {
  const Scenario* churn = ScenarioRegistry::Instance().Find("crash_churn");
  ASSERT_NE(churn, nullptr);
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const ScenarioRunResult a = RunScenario(*churn, serial);
  const ScenarioRunResult b = RunScenario(*churn, parallel);
  EXPECT_EQ(DeterministicJson(a), DeterministicJson(b));
  // OptiLog deployments pin their measurement bus: the digest must be the
  // log head fingerprint, not empty.
  for (const PointResult& p : a.points) {
    EXPECT_EQ(p.digest.size(), 64u);
  }
}

TEST(SweepDeterminismTest, RegisteredLogBoundSweepIsThreadCountInvariant) {
  // The state-machine tier-1 scenarios carry the PR-3 contract too: the
  // recovery/transfer path and the checkpoint/truncation path must be
  // byte-identical at any thread count. log_bound is the cheap proxy run
  // here (recovery's end-to-end determinism is pinned by
  // Recovery.RunsAreDeterministic and the committed baseline).
  const Scenario* s = ScenarioRegistry::Instance().Find("log_bound");
  ASSERT_NE(s, nullptr);
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const ScenarioRunResult a = RunScenario(*s, serial);
  const ScenarioRunResult b = RunScenario(*s, parallel);
  EXPECT_EQ(DeterministicJson(a), DeterministicJson(b));
  for (const PointResult& p : a.points) {
    EXPECT_EQ(p.digest.size(), 64u);
  }
}

TEST(RunnerResult, FingerprintTracksEveryCountedField) {
  MetricsReport m;
  m.committed = 10;
  m.throughput_per_sec = {1, 2, 3};
  const std::string base = MetricsFingerprint(m);
  EXPECT_EQ(base.size(), 64u);

  MetricsReport changed = m;
  changed.committed = 11;
  EXPECT_NE(MetricsFingerprint(changed), base);
  changed = m;
  changed.throughput_per_sec[1] = 9;
  EXPECT_NE(MetricsFingerprint(changed), base);
  changed = m;
  changed.log_head_hex = "ab";
  EXPECT_NE(MetricsFingerprint(changed), base);
  changed = m;
  changed.event_core.typed_deliveries = 1;
  EXPECT_NE(MetricsFingerprint(changed), base);
  // The state machine joins the fingerprint: applied frontier, digest
  // agreement, and the transfer accounting all pin.
  changed = m;
  changed.statemachine.applied = 7;
  EXPECT_NE(MetricsFingerprint(changed), base);
  changed = m;
  changed.statemachine.state_digest_hex = "ab";
  EXPECT_NE(MetricsFingerprint(changed), base);
  changed = m;
  changed.statemachine.transfer_bytes = 1;
  EXPECT_NE(MetricsFingerprint(changed), base);
  changed = m;
  changed.workload.kv_mismatches = 1;
  EXPECT_NE(MetricsFingerprint(changed), base);
  // Wall clock must NOT move the fingerprint.
  changed = m;
  changed.event_core.wall_seconds = 123.0;
  EXPECT_EQ(MetricsFingerprint(changed), base);
}

}  // namespace
}  // namespace optilog
