// Equivalence tests for the Deployment builder: engines built through the
// fluent API must reproduce the exact counts of the hand-wired setups they
// replaced. The hand-wired halves below are intentionally the only direct
// TreeRsm / PbftHarness constructions outside src/ — they are the reference
// the API is measured against.
#include <gtest/gtest.h>

#include "src/api/deployment.h"
#include "src/tree/kauri.h"

namespace optilog {
namespace {

LatencyMatrix MatrixFor(const std::vector<City>& cities) {
  const auto rtts = RttMatrixMs(cities);
  LatencyMatrix m(static_cast<uint32_t>(cities.size()));
  for (ReplicaId a = 0; a < cities.size(); ++a) {
    for (ReplicaId b = 0; b < cities.size(); ++b) {
      if (a != b) {
        m.Record(a, b, rtts[a][b]);
      }
    }
  }
  return m;
}

// --- OptiTree: healthy run ---------------------------------------------------

TEST(DeploymentBuilder, OptiTreeMatchesHandWiredCounts) {
  constexpr uint32_t kN = 21, kF = 6;
  constexpr uint64_t kSeed = 11;
  const SimTime run_time = 20 * kSec;
  const AnnealingParams params = AnnealingParams::ForBudget(2000);

  // Hand-wired: the setup every bench used to repeat.
  uint64_t wired_blocks = 0;
  double wired_latency = 0.0;
  {
    const auto cities = Europe21();
    GeoLatencyModel latency(cities);
    Simulator sim;
    FaultModel faults;
    Network net(&sim, &latency, &faults);
    KeyStore keys(kN, kSeed);
    const LatencyMatrix matrix = MatrixFor(cities);

    TreeRsmOptions opts;
    opts.n = kN;
    opts.f = kF;
    TreeRsm rsm(&sim, &net, &keys, &matrix, opts);
    Rng rng(kSeed);
    std::vector<ReplicaId> all(kN);
    for (ReplicaId id = 0; id < kN; ++id) {
      all[id] = id;
    }
    rsm.SetTopology(AnnealTree(kN, all, matrix, 2 * kF + 1, rng, params));
    rsm.Start();
    sim.RunUntil(run_time);
    wired_blocks = rsm.committed_blocks();
    wired_latency = rsm.latency_rec().stat().mean();
    ASSERT_GT(wired_blocks, 50u);
  }

  // Builder-built: same seed, same search budget.
  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithReplicas(kN, kF)
               .WithProtocol(Protocol::kOptiTree)
               .WithSeed(kSeed)
               .WithInitialSearch(params)
               .Build();
  d->Start();
  d->RunUntil(run_time);
  const MetricsReport m = d->Metrics();

  EXPECT_EQ(m.committed, wired_blocks);
  EXPECT_DOUBLE_EQ(m.mean_latency_ms, wired_latency);
  EXPECT_EQ(m.failed_rounds, 0u);
  EXPECT_EQ(m.reconfigurations, 0u);
}

// --- OptiTree: crash + pipeline-driven reconfiguration -----------------------

TEST(DeploymentBuilder, OptiTreeCrashRecoveryMatchesHandWiredPipeline) {
  constexpr uint32_t kN = 21, kF = 6;
  constexpr uint64_t kSeed = 11;
  const SimTime run_time = 30 * kSec;
  const SimTime crash_at = 5 * kSec;
  const AnnealingParams params = AnnealingParams::ForBudget(2000);

  // Hand-wired OptiLog loop: log + pipeline + reconfiguration policy — what
  // bench_fig15 / stellar_network wired by hand before WithOptiLogReconfig.
  uint64_t wired_blocks = 0, wired_reconfigs = 0, wired_failed = 0;
  {
    const auto cities = Europe21();
    GeoLatencyModel latency(cities);
    Simulator sim;
    FaultModel faults;
    Network net(&sim, &latency, &faults);
    KeyStore keys(kN, kSeed);
    const LatencyMatrix matrix = MatrixFor(cities);

    TreeRsmOptions opts;
    opts.n = kN;
    opts.f = kF;
    TreeRsm rsm(&sim, &net, &keys, &matrix, opts);
    Rng rng(kSeed);
    std::vector<ReplicaId> all(kN);
    for (ReplicaId id = 0; id < kN; ++id) {
      all[id] = id;
    }
    const TreeTopology first = AnnealTree(kN, all, matrix, 2 * kF + 1, rng, params);
    rsm.SetTopology(first);
    faults.Mutable(first.root()).crash_at = crash_at;

    TreeConfigSpace space(kN, 2 * kF + 1);
    Pipeline::Options popts;
    popts.suspicion.policy = CandidatePolicy::kTreeDisjointEdges;
    popts.suspicion.min_candidates = BranchFactorFor(kN) + 1;
    popts.rng_seed = kSeed;
    popts.auto_reciprocate = false;
    Log log;
    Pipeline pipeline(
        0, kN, kF, &keys, &space, [](Bytes) {},
        [](const RoleConfig&, double) {}, popts);
    log.AddListener([&](const LogEntry& e) { pipeline.OnCommit(e); });

    Rng reconfig_rng(kSeed ^ 0x5deece66dull);
    size_t consumed = 0;
    rsm.SetReconfigPolicy([&](TreeRsm& r) -> std::optional<TreeTopology> {
      const auto& suspicions = r.logged_suspicions();
      for (; consumed < suspicions.size(); ++consumed) {
        LogEntry e;
        e.kind = EntryKind::kMeasurement;
        e.committed_at = sim.now();
        e.payload = MakeSuspicionMeasurement(suspicions[consumed], keys).Encode();
        log.Append(e);
      }
      pipeline.OnView(consumed);
      std::set<ReplicaId> excluded;
      for (ReplicaId id = 0; id < kN; ++id) {
        if (faults.IsCrashedAt(id, sim.now())) {
          excluded.insert(id);
        }
      }
      const CandidateSet& k = pipeline.suspicion_monitor().Current();
      std::vector<ReplicaId> pool;
      for (ReplicaId id : k.candidates) {
        if (excluded.count(id) == 0) {
          pool.push_back(id);
        }
      }
      if (pool.size() < BranchFactorFor(kN) + 1) {
        return std::nullopt;
      }
      r.SetExcluded(std::move(excluded));
      r.PauseProposals(1 * kSec);
      return AnnealTree(kN, pool, matrix, 2 * kF + 1 + k.u, reconfig_rng, params);
    });

    rsm.Start();
    sim.RunUntil(run_time);
    wired_blocks = rsm.committed_blocks();
    wired_reconfigs = rsm.reconfigurations();
    wired_failed = rsm.failed_rounds();
    ASSERT_GE(wired_reconfigs, 1u);
    ASSERT_GT(wired_blocks, 50u);
  }

  ReplicaId first_root = kNoReplica;
  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithReplicas(kN, kF)
               .WithProtocol(Protocol::kOptiTree)
               .WithSeed(kSeed)
               .WithInitialSearch(params)
               .WithOptiLogReconfig(/*search_window=*/1 * kSec)
               .WithFaults([&](Deployment& dep) {
                 first_root = dep.tree().topology().root();
                 dep.faults().Mutable(first_root).crash_at = crash_at;
               })
               .Build();
  d->Start();
  d->RunUntil(run_time);
  const MetricsReport m = d->Metrics();

  EXPECT_EQ(m.committed, wired_blocks);
  EXPECT_EQ(m.reconfigurations, wired_reconfigs);
  EXPECT_EQ(m.failed_rounds, wired_failed);
  EXPECT_NE(d->tree().topology().root(), first_root);
}

// --- OptiAware: delay attack -------------------------------------------------

TEST(DeploymentBuilder, OptiAwareMatchesHandWiredCounts) {
  const SimTime run_time = 40 * kSec;
  PbftOptions opts;
  opts.n = 21;
  opts.f = 6;
  opts.mode = PbftMode::kOptiAware;
  opts.delta = 1.5;
  opts.optimize_at = 5 * kSec;

  // Hand-wired: replicas and clients colocated (doubled city list).
  uint64_t wired_instances = 0, wired_suspicions = 0, wired_reconfigs = 0;
  Digest wired_head{};
  {
    auto cities = Europe21();
    auto both = cities;
    both.insert(both.end(), cities.begin(), cities.end());
    GeoLatencyModel latency(both);
    Simulator sim;
    FaultModel faults;
    Network net(&sim, &latency, &faults);
    KeyStore keys(21, 1);
    PbftHarness harness(&sim, &net, &keys, opts);
    sim.ScheduleAt(15 * kSec, [&] {
      auto& f = faults.Mutable(harness.config().leader);
      f.proposal_delay = 600 * kMsec;
      f.fast_probes = true;
    });
    harness.Start();
    sim.RunUntil(run_time);
    wired_instances = harness.committed_instances();
    wired_suspicions = harness.suspicion_times().size();
    wired_reconfigs = harness.reconfigure_times().size();
    wired_head = harness.log().head();
    ASSERT_GT(wired_suspicions, 0u);
    ASSERT_GE(wired_reconfigs, 2u);  // scheduled optimization + mitigation
  }

  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithProtocol(Protocol::kOptiAware)
               .WithPbftOptions(opts)
               .Build();
  d->sim().ScheduleAt(15 * kSec, [&] {
    auto& f = d->faults().Mutable(d->pbft().config().leader);
    f.proposal_delay = 600 * kMsec;
    f.fast_probes = true;
  });
  d->Start();
  d->RunUntil(run_time);
  const MetricsReport m = d->Metrics();

  EXPECT_EQ(m.committed, wired_instances);
  EXPECT_EQ(m.suspicions, wired_suspicions);
  EXPECT_EQ(m.reconfigurations, wired_reconfigs);
  // The replicated log is byte-identical: the measurement bus is
  // deterministic end to end.
  EXPECT_EQ(d->pbft().log().head(), wired_head);
}

// --- Builder defaults and the ConsensusEngine interface ----------------------

TEST(DeploymentBuilder, DefaultsFillGeoAndFaultBudget) {
  auto d = Deployment::Builder()
               .WithReplicas(13, 4)
               .WithProtocol(Protocol::kKauri)
               .Build();
  EXPECT_EQ(d->n(), 13u);
  EXPECT_EQ(d->f(), 4u);
  EXPECT_EQ(d->cities().size(), 13u);
  EXPECT_DOUBLE_EQ(d->matrix().Coverage(), 1.0);
  d->Start();
  d->RunUntil(10 * kSec);
  const MetricsReport m = d->Metrics();
  EXPECT_GT(m.committed, 10u);
  // The unified report carries the event-core counters, and a builder-built
  // tree run stays entirely on the typed (closure-free) lanes.
  EXPECT_GT(m.event_core.typed_deliveries, 0u);
  EXPECT_GT(m.event_core.typed_timers, 0u);
  EXPECT_EQ(m.event_core.closure_events, 0u);
  EXPECT_EQ(m.event_core.events_executed, d->sim().events_executed());
}

TEST(DeploymentBuilder, GeoDerivesSizeAndFaults) {
  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithProtocol(Protocol::kHotStuff)
               .Build();
  EXPECT_EQ(d->n(), 21u);
  EXPECT_EQ(d->f(), 6u);
  // HotStuff default topology: a star rooted at 0.
  EXPECT_EQ(d->tree().topology().root(), 0u);
  EXPECT_TRUE(d->tree().topology().intermediates().empty());
}

TEST(ConsensusEngine, SetTopologyOrConfigRoundTrips) {
  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithProtocol(Protocol::kKauri)
               .WithSeed(3)
               .Build();
  ConsensusEngine& engine = d->engine();

  Rng rng(17);
  const TreeTopology replacement = RandomTree(21, rng);
  engine.SetTopologyOrConfig(replacement.ToConfig());
  EXPECT_EQ(d->tree().topology().root(), replacement.root());
  EXPECT_EQ(engine.ActiveConfig(), replacement.ToConfig());

  engine.Start();
  d->RunUntil(10 * kSec);
  const MetricsReport m = engine.Metrics();
  EXPECT_GT(m.committed, 10u);
  EXPECT_GT(m.MeanOps(1, 10), 0.0);

  // Mid-run install is a forced reconfiguration: counted, and progress
  // resumes on the new tree without waiting out stale round timers.
  const TreeTopology second = RandomTree(21, rng);
  engine.SetTopologyOrConfig(second.ToConfig());
  d->RunUntil(20 * kSec);
  const MetricsReport after = engine.Metrics();
  EXPECT_EQ(after.reconfigurations, m.reconfigurations + 1);
  EXPECT_EQ(after.reconfig_times.back(), 10 * kSec);
  EXPECT_GT(after.committed, m.committed + 10u);
}

TEST(ConsensusEngine, PbftReportsUnifiedMetrics) {
  PbftOptions opts;
  opts.optimize_at = 5 * kSec;
  auto d = Deployment::Builder()
               .WithGeo(Europe21())
               .WithProtocol(Protocol::kAware)
               .WithPbftOptions(opts)
               .Build();
  d->Start();
  d->RunUntil(15 * kSec);
  const MetricsReport m = d->Metrics();
  EXPECT_GT(m.committed, 20u);
  EXPECT_GT(m.total_commands, m.committed);  // batches carry >= 1 request
  EXPECT_GT(m.mean_latency_ms, 1.0);
  EXPECT_LT(m.mean_latency_ms, 500.0);
  EXPECT_EQ(m.reconfigurations, 1u);  // the scheduled optimization
  EXPECT_FALSE(m.throughput_per_sec.empty());
  // The engine's config names a leader with full weight vector.
  EXPECT_EQ(d->engine().ActiveConfig().weight_max.size(), 21u);
}

}  // namespace
}  // namespace optilog
