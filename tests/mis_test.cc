#include <gtest/gtest.h>

#include "src/core/graph.h"
#include "src/core/mis.h"
#include "src/util/rng.h"

namespace optilog {
namespace {

std::vector<ReplicaId> Vertices(uint32_t n) {
  std::vector<ReplicaId> v(n);
  for (uint32_t i = 0; i < n; ++i) {
    v[i] = i;
  }
  return v;
}

bool IsIndependent(const SuspicionGraph& g, const std::vector<ReplicaId>& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (g.HasEdge(set[i], set[j])) {
        return false;
      }
    }
  }
  return true;
}

TEST(Graph, AddRemoveEdges) {
  SuspicionGraph g;
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_FALSE(g.AddEdge(2, 1));  // same undirected edge
  EXPECT_FALSE(g.AddEdge(3, 3));  // self loop ignored
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.RemoveEdge(1, 2));
  EXPECT_FALSE(g.RemoveEdge(1, 2));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, RemoveVertexDropsIncidentEdges) {
  SuspicionGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.RemoveVertex(1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(2, 3));
}

TEST(Graph, OldestEdgeFollowsInsertionOrder) {
  SuspicionGraph g;
  g.AddEdge(5, 6);
  g.AddEdge(1, 2);
  EdgeKey oldest;
  ASSERT_TRUE(g.OldestEdge(&oldest));
  EXPECT_EQ(oldest, EdgeKey::Make(5, 6));
  g.RemoveEdge(5, 6);
  ASSERT_TRUE(g.OldestEdge(&oldest));
  EXPECT_EQ(oldest, EdgeKey::Make(1, 2));
}

TEST(Graph, NeighborsAndDegree) {
  SuspicionGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Neighbors(0), (std::vector<ReplicaId>{1, 2}));
}

TEST(Mis, EmptyGraphReturnsAllVertices) {
  SuspicionGraph g;
  EXPECT_EQ(MaximumIndependentSet(g, Vertices(5)).size(), 5u);
}

TEST(Mis, SingleEdgeExcludesOne) {
  SuspicionGraph g;
  g.AddEdge(0, 1);
  const auto mis = MaximumIndependentSet(g, Vertices(4));
  EXPECT_EQ(mis.size(), 3u);
  EXPECT_TRUE(IsIndependent(g, mis));
}

TEST(Mis, StarGraphExcludesCenter) {
  SuspicionGraph g;
  for (ReplicaId leaf = 1; leaf < 8; ++leaf) {
    g.AddEdge(0, leaf);
  }
  const auto mis = MaximumIndependentSet(g, Vertices(8));
  EXPECT_EQ(mis.size(), 7u);
  EXPECT_FALSE(std::binary_search(mis.begin(), mis.end(), 0u));
}

TEST(Mis, PathGraph) {
  // Path 0-1-2-3-4: MIS = {0, 2, 4}.
  SuspicionGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  const auto mis = MaximumIndependentSet(g, Vertices(5));
  EXPECT_EQ(mis, (std::vector<ReplicaId>{0, 2, 4}));
}

TEST(Mis, OddCycle) {
  // 5-cycle: MIS size 2.
  SuspicionGraph g;
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5);
  }
  const auto mis = MaximumIndependentSet(g, Vertices(5));
  EXPECT_EQ(mis.size(), 2u);
  EXPECT_TRUE(IsIndependent(g, mis));
}

TEST(Mis, CompleteGraphLeavesOne) {
  SuspicionGraph g;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      g.AddEdge(i, j);
    }
  }
  EXPECT_EQ(MaximumIndependentSet(g, Vertices(6)).size(), 1u);
}

TEST(Mis, RestrictedVertexSet) {
  SuspicionGraph g;
  g.AddEdge(0, 1);
  // Only vertices {1, 2, 3} considered; 0 is outside so edge 0-1 is moot.
  const auto mis = MaximumIndependentSet(g, {1, 2, 3});
  EXPECT_EQ(mis, (std::vector<ReplicaId>{1, 2, 3}));
}

TEST(Mis, DeterministicAcrossCalls) {
  SuspicionGraph g;
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    g.AddEdge(static_cast<ReplicaId>(rng.Below(20)),
              static_cast<ReplicaId>(rng.Below(20)));
  }
  const auto a = MaximumIndependentSet(g, Vertices(20));
  const auto b = MaximumIndependentSet(g, Vertices(20));
  EXPECT_EQ(a, b);
}

TEST(Mis, DenseApiMatchesGraphApi) {
  SuspicionGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  std::vector<std::vector<uint8_t>> adj(3, std::vector<uint8_t>(3, 0));
  adj[0][1] = adj[1][0] = 1;
  adj[1][2] = adj[2][1] = 1;
  const auto dense = MaximumIndependentSetDense(adj);
  const auto sparse = MaximumIndependentSet(g, Vertices(3));
  ASSERT_EQ(dense.size(), sparse.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense[i], sparse[i]);
  }
}

// Property sweep: on random graphs the result is always independent and
// maximal (no vertex can be added), and with f Byzantine vertices raising
// all suspicions the MIS keeps >= n - f members (Lemma 1 precondition).
class MisRandom : public ::testing::TestWithParam<int> {};

TEST_P(MisRandom, IndependentAndMaximal) {
  Rng rng(GetParam());
  const uint32_t n = 16;
  SuspicionGraph g;
  for (int e = 0; e < 30; ++e) {
    g.AddEdge(static_cast<ReplicaId>(rng.Below(n)),
              static_cast<ReplicaId>(rng.Below(n)));
  }
  const auto mis = MaximumIndependentSet(g, Vertices(n));
  EXPECT_TRUE(IsIndependent(g, mis));
  // Maximality: every excluded vertex conflicts with the set.
  for (ReplicaId v = 0; v < n; ++v) {
    if (std::binary_search(mis.begin(), mis.end(), v)) {
      continue;
    }
    bool conflicts = false;
    for (ReplicaId u : mis) {
      if (g.HasEdge(u, v)) {
        conflicts = true;
        break;
      }
    }
    EXPECT_TRUE(conflicts) << "vertex " << v << " could be added";
  }
}

TEST_P(MisRandom, ByzantineEdgesLeaveNMinusF) {
  Rng rng(GetParam() + 1000);
  const uint32_t n = 13, f = 4;
  // f Byzantine replicas suspect arbitrary correct replicas; all edges are
  // incident to a Byzantine vertex, so the n - f correct ones stay
  // independent.
  SuspicionGraph g;
  for (int e = 0; e < 40; ++e) {
    const ReplicaId byz = static_cast<ReplicaId>(rng.Below(f));
    const ReplicaId other = static_cast<ReplicaId>(rng.Below(n));
    g.AddEdge(byz, other);
  }
  const auto mis = MaximumIndependentSet(g, Vertices(n));
  EXPECT_GE(mis.size(), n - f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisRandom, ::testing::Range(0, 10));

}  // namespace
}  // namespace optilog
