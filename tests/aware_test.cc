#include <gtest/gtest.h>

#include "src/aware/aware_score.h"
#include "src/net/geo.h"

namespace optilog {
namespace {

LatencyMatrix UniformMatrix(uint32_t n, double rtt_ms) {
  LatencyMatrix m(n);
  for (ReplicaId a = 0; a < n; ++a) {
    for (ReplicaId b = 0; b < n; ++b) {
      if (a != b) {
        m.Record(a, b, rtt_ms);
      }
    }
  }
  return m;
}

CandidateSet AllCandidates(uint32_t n) {
  CandidateSet k;
  for (ReplicaId id = 0; id < n; ++id) {
    k.candidates.push_back(id);
  }
  return k;
}

RoleConfig BasicConfig(uint32_t n, uint32_t f, ReplicaId leader) {
  RoleConfig cfg;
  cfg.leader = leader;
  cfg.weight_max.assign(n, 0);
  uint32_t assigned = 0;
  cfg.weight_max[leader] = 1;
  ++assigned;
  for (ReplicaId id = 0; id < n && assigned < 2 * f; ++id) {
    if (id != leader) {
      cfg.weight_max[id] = 1;
      ++assigned;
    }
  }
  return cfg;
}

TEST(WeightScheme, PbftCaseNoDelta) {
  // n = 3f + 1: Vmax = Vmin = 1, quorum = 2f + 1.
  const WeightScheme s = WeightScheme::For(13, 4);
  EXPECT_DOUBLE_EQ(s.v_max, 1.0);
  EXPECT_DOUBLE_EQ(s.v_min, 1.0);
  EXPECT_DOUBLE_EQ(s.quorum_weight, 9.0);
}

TEST(WeightScheme, AwareCaseWithDelta) {
  // n = 21, f = 6 -> Delta = 2, Vmax = 1 + 2/6, Qv = 2*6*Vmax + 1 = 17.
  const WeightScheme s = WeightScheme::For(21, 6);
  EXPECT_NEAR(s.v_max, 1.0 + 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.quorum_weight, 17.0, 1e-9);
}

TEST(WeightedQuorumTime, PicksFastestQuorum) {
  // Weights 1, quorum 3: third-fastest arrival.
  std::vector<std::pair<double, double>> arrivals{
      {50, 1}, {10, 1}, {30, 1}, {20, 1}, {40, 1}};
  EXPECT_DOUBLE_EQ(WeightedQuorumTime(arrivals, 3.0, 0), 30.0);
}

TEST(WeightedQuorumTime, HeavyVotesFormQuorumFaster) {
  std::vector<std::pair<double, double>> arrivals{
      {10, 2}, {20, 2}, {100, 1}, {110, 1}, {120, 1}};
  // Quorum weight 4: two Vmax replicas at t = 20 suffice.
  EXPECT_DOUBLE_EQ(WeightedQuorumTime(arrivals, 4.0, 0), 20.0);
  // Without weights it would need four arrivals (t = 110).
  std::vector<std::pair<double, double>> flat{
      {10, 1}, {20, 1}, {100, 1}, {110, 1}, {120, 1}};
  EXPECT_DOUBLE_EQ(WeightedQuorumTime(flat, 4.0, 0), 110.0);
}

TEST(WeightedQuorumTime, SkipFastestModelsMisbehavers) {
  std::vector<std::pair<double, double>> arrivals{
      {10, 1}, {20, 1}, {30, 1}, {40, 1}};
  EXPECT_DOUBLE_EQ(WeightedQuorumTime(arrivals, 2.0, 0), 20.0);
  EXPECT_DOUBLE_EQ(WeightedQuorumTime(arrivals, 2.0, 1), 30.0);
  EXPECT_DOUBLE_EQ(WeightedQuorumTime(arrivals, 2.0, 2), 40.0);
  EXPECT_TRUE(std::isinf(WeightedQuorumTime(arrivals, 2.0, 3)));
}

TEST(AwareScore, UniformMatrixIsThreePhases) {
  // Uniform RTT r, uniform weights: propose r, prepared 2r, committed 3r.
  const uint32_t n = 13, f = 4;
  const WeightScheme s = WeightScheme::For(n, f);
  const LatencyMatrix m = UniformMatrix(n, 10.0);
  const RoleConfig cfg = BasicConfig(n, f, 0);
  EXPECT_DOUBLE_EQ(AwareRoundDurationMs(cfg, s, m, 0), 30.0);
}

TEST(AwareScore, LeaderPlacementMatters) {
  // Leader in the EU cluster beats a leader in an outlier city.
  const auto cities = NaEu43();
  const auto rtts = RttMatrixMs(cities);
  LatencyMatrix m(43);
  for (ReplicaId a = 0; a < 43; ++a) {
    for (ReplicaId b = 0; b < 43; ++b) {
      if (a != b) {
        m.Record(a, b, rtts[a][b]);
      }
    }
  }
  // f = 10 leaves Delta = 12 spare replicas, so weighted quorums can form
  // from well-placed Vmax holders — the regime Aware/WHEAT target.
  const uint32_t f = 10;
  const WeightScheme s = WeightScheme::For(43, f);
  double best = 1e18, worst = 0;
  for (ReplicaId leader = 0; leader < 43; ++leader) {
    RoleConfig cfg;
    cfg.leader = leader;
    cfg.weight_max.assign(43, 0);
    // Give Vmax to the leader and its 2f - 1 nearest peers.
    std::vector<std::pair<double, ReplicaId>> near;
    for (ReplicaId other = 0; other < 43; ++other) {
      near.emplace_back(other == leader ? 0.0 : m.Rtt(leader, other), other);
    }
    std::sort(near.begin(), near.end());
    for (uint32_t i = 0; i < 2 * f; ++i) {
      cfg.weight_max[near[i].second] = 1;
    }
    const double d = AwareRoundDurationMs(cfg, s, m, 0);
    best = std::min(best, d);
    worst = std::max(worst, d);
  }
  EXPECT_LT(best, 0.8 * worst);
}

TEST(AwareScore, UEstimateIncreasesPrediction) {
  const uint32_t n = 21, f = 6;
  const WeightScheme s = WeightScheme::For(n, f);
  const auto cities = Europe21();
  const auto rtts = RttMatrixMs(cities);
  LatencyMatrix m(n);
  for (ReplicaId a = 0; a < n; ++a) {
    for (ReplicaId b = 0; b < n; ++b) {
      if (a != b) {
        m.Record(a, b, rtts[a][b]);
      }
    }
  }
  const RoleConfig cfg = BasicConfig(n, f, 0);
  double prev = 0;
  for (uint32_t u = 0; u <= 4; ++u) {
    const double d = AwareRoundDurationMs(cfg, s, m, u);
    EXPECT_GE(d, prev) << "u=" << u;
    prev = d;
  }
}

TEST(AwareScore, TimeoutRequirementsTr1Tr2) {
  const uint32_t n = 13, f = 4;
  const LatencyMatrix m = UniformMatrix(n, 10.0);
  const RoleConfig cfg = BasicConfig(n, f, 2);
  // TR1: Propose timeout to A = L(leader, A).
  EXPECT_DOUBLE_EQ(AwareProposeTimeoutMs(cfg, m, 5), 10.0);
  EXPECT_DOUBLE_EQ(AwareProposeTimeoutMs(cfg, m, 2), 0.0);
  // TR2: Write from A to B = propose(A) + L(A, B).
  EXPECT_DOUBLE_EQ(AwareWriteTimeoutMs(cfg, m, 5, 7), 20.0);
  EXPECT_DOUBLE_EQ(AwareWriteTimeoutMs(cfg, m, 2, 7), 10.0);  // leader writes
}

TEST(AwareScore, Tr3RoundEqualsLeaderAcceptQuorum) {
  // d_rnd must equal the accept-quorum timeout at the leader (TR3), which is
  // exactly how AwareRoundDurationMs is built; cross-check on a uniform
  // matrix against AwareAcceptTimeoutMs.
  const uint32_t n = 13, f = 4;
  const WeightScheme s = WeightScheme::For(n, f);
  const LatencyMatrix m = UniformMatrix(n, 10.0);
  const RoleConfig cfg = BasicConfig(n, f, 0);
  // Accept from any non-leader B to the leader: prepared(B) + L(B, L) = 30.
  EXPECT_DOUBLE_EQ(AwareAcceptTimeoutMs(cfg, s, m, 1, 0, 0), 30.0);
  EXPECT_DOUBLE_EQ(AwareRoundDurationMs(cfg, s, m, 0), 30.0);
}

TEST(AwareSpace, RandomConfigsValid) {
  AwareConfigSpace space(21, 6);
  const CandidateSet k = AllCandidates(21);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const RoleConfig cfg = space.RandomConfig(k, rng);
    EXPECT_TRUE(space.Valid(cfg, k));
    uint32_t vmax = 0;
    for (uint8_t w : cfg.weight_max) {
      vmax += w;
    }
    EXPECT_EQ(vmax, 12u);  // 2f
    EXPECT_EQ(cfg.weight_max[cfg.leader], 1);
  }
}

TEST(AwareSpace, MutatePreservesValidity) {
  AwareConfigSpace space(21, 6);
  CandidateSet k;
  for (ReplicaId id = 0; id < 16; ++id) {
    k.candidates.push_back(id);
  }
  Rng rng(3);
  RoleConfig cfg = space.RandomConfig(k, rng);
  for (int i = 0; i < 300; ++i) {
    cfg = space.Mutate(cfg, k, rng);
    ASSERT_TRUE(space.Valid(cfg, k)) << "iteration " << i;
  }
}

TEST(AwareSpace, RejectsVmaxOutsideCandidates) {
  AwareConfigSpace space(13, 4);
  CandidateSet k;
  for (ReplicaId id = 0; id < 12; ++id) {
    k.candidates.push_back(id);
  }
  RoleConfig cfg;
  cfg.leader = 0;
  cfg.weight_max.assign(13, 0);
  cfg.weight_max[0] = 1;
  cfg.weight_max[12] = 1;  // 12 is not a candidate
  EXPECT_FALSE(space.Valid(cfg, k));
}

TEST(AwareSpace, RejectsNonCandidateLeader) {
  AwareConfigSpace space(13, 4);
  CandidateSet k;
  for (ReplicaId id = 1; id < 13; ++id) {
    k.candidates.push_back(id);
  }
  RoleConfig cfg;
  cfg.leader = 0;
  cfg.weight_max.assign(13, 0);
  EXPECT_FALSE(space.Valid(cfg, k));
}

}  // namespace
}  // namespace optilog
