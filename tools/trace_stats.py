#!/usr/bin/env python3
"""Per-request critical-path statistics from an exported Chrome trace.

Usage:
    trace_stats.py TRACE_JSON [--csv]

Input is the Chrome trace-event JSON that `optilog_bench --trace
<scenario>:<point>:<path>` writes (src/obs/chrome_export.cc): one instant
event per flight-recorder record, carrying the raw record in `args`
(id/parent/kind/type/a/b). This script is the offline twin of
src/obs/stage_breakdown.cc — it refolds the six-record client lifecycle
(client_send -> queue_admit -> batch_seal -> commit -> reply_sent ->
client_complete, keyed by (request id, client id), first record of each kind
wins) and reports:

  * chain reconstruction: committed requests with the full chain vs
    committed requests missing a lifecycle record;
  * per-stage latency (mean / p50 / p99) across complete chains:
    client_net, queue, consensus, apply, reply — plus end-to-end total;
  * the causal forest shape: record count, root count, dangling-parent
    count (must be 0), and cross-partition edge count.

Timestamps in the trace are microseconds of sim time (Chrome's native `ts`
unit); stages print in ms.
Exit status: 0 clean, 1 if the trace is structurally broken (dangling
parents or no complete chains), 2 on usage errors.
"""

import argparse
import json
import sys

# TraceKind constants (src/obs/trace.h — stable wire values).
CLIENT_SEND = 16
QUEUE_ADMIT = 17
BATCH_SEAL = 18
COMMIT = 19
REPLY_SENT = 20
CLIENT_COMPLETE = 21
LIFECYCLE = range(CLIENT_SEND, CLIENT_COMPLETE + 1)

STAGE_NAMES = ["client_net", "queue", "consensus", "apply", "reply", "total"]
# (stage, from-kind, to-kind): each stage telescopes between two lifecycle
# records; "batch" is 0 by construction (seal and propose share a handler).
STAGE_EDGES = [
    ("client_net", CLIENT_SEND, QUEUE_ADMIT),
    ("queue", QUEUE_ADMIT, BATCH_SEAL),
    ("consensus", BATCH_SEAL, COMMIT),
    ("apply", COMMIT, REPLY_SENT),
    ("reply", REPLY_SENT, CLIENT_COMPLETE),
    ("total", CLIENT_SEND, CLIENT_COMPLETE),
]


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("trace", help="Chrome trace JSON from optilog_bench --trace")
    ap.add_argument("--csv", action="store_true", help="machine-readable output")
    args = ap.parse_args(argv)

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read '{args.trace}': {e}", file=sys.stderr)
        return 2

    records = []  # (t_ns, id, parent, kind, a, b)
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "i":
            continue
        a = ev.get("args", {})
        if "kind" not in a:
            continue
        records.append(
            (ev["ts"], a["id"], a["parent"], a["kind"], a["a"], a["b"])
        )

    if not records:
        print("error: no flight-recorder instant events in the trace",
              file=sys.stderr)
        return 1

    # Causal forest shape. Parent ids always refer to earlier records, so one
    # pass suffices.
    ids = set()
    roots = 0
    dangling = 0
    cross_partition = 0
    for _, rid, parent, _, _, _ in records:
        ids.add(rid)
        if parent == 0:
            roots += 1
        elif parent not in ids:
            dangling += 1
        elif (parent >> 48) != (rid >> 48):
            cross_partition += 1

    # Lifecycle chains keyed (client id, request id); first record of each
    # kind wins — records are in merged (t, id) order in the file.
    chains = {}
    for t, _, _, kind, a, b in records:
        if kind not in LIFECYCLE:
            continue
        chain = chains.setdefault((b, a), {})
        chain.setdefault(kind, t)

    complete = []
    incomplete = 0
    for chain in chains.values():
        if CLIENT_SEND not in chain:
            continue  # coordinator-internal record, not a client request
        if COMMIT not in chain:
            continue  # never committed
        if all(k in chain for k in LIFECYCLE):
            complete.append(chain)
        else:
            incomplete += 1

    stages = {name: [] for name in STAGE_NAMES}
    for chain in complete:
        for name, lo, hi in STAGE_EDGES:
            stages[name].append((chain[hi] - chain[lo]) / 1e3)

    committed = len(complete) + incomplete
    pct = 100.0 * len(complete) / committed if committed else 0.0

    if args.csv:
        print("stage,count,mean_ms,p50_ms,p99_ms")
        for name in STAGE_NAMES:
            vals = sorted(stages[name])
            mean = sum(vals) / len(vals) if vals else 0.0
            print(f"{name},{len(vals)},{mean:.3f},"
                  f"{percentile(vals, 0.5):.3f},{percentile(vals, 0.99):.3f}")
    else:
        print(f"records: {len(records)}  roots: {roots}  "
              f"cross-partition edges: {cross_partition}  "
              f"dangling parents: {dangling}")
        print(f"committed requests: {committed}  complete chains: "
              f"{len(complete)} ({pct:.1f}%)  incomplete: {incomplete}")
        print(f"{'stage':<12} {'mean_ms':>9} {'p50_ms':>9} {'p99_ms':>9}")
        for name in STAGE_NAMES:
            vals = sorted(stages[name])
            mean = sum(vals) / len(vals) if vals else 0.0
            print(f"{name:<12} {mean:>9.2f} {percentile(vals, 0.5):>9.2f} "
                  f"{percentile(vals, 0.99):>9.2f}")

    if dangling or not complete:
        print("FAIL: broken trace (dangling parents or no complete chains)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
