#!/usr/bin/env python3
"""Diff two trees of BENCH_<scenario>.json files against per-metric tolerances.

Usage:
    compare_bench.py BASELINE_DIR CANDIDATE_DIR [options]

Options:
    --tol NAME=REL          relative tolerance for the metric or column NAME
                            (repeatable), e.g. --tol latency_ms=0.05. NAME
                            may be an fnmatch glob (quote it): 'p*_ms=0.05'
                            covers every percentile metric (p50_ms, p99_ms,
                            latency_p99_ms, ...). Exact names win over globs;
                            among globs the first match wins.
    --default-float-tol REL fallback relative tolerance for non-integer
                            values without an explicit --tol (default 0:
                            exact)

The gate, per the determinism contract (DESIGN.md, "Scenario runner"):

  * structure (scenario set, columns, point count, params, row/summary
    shapes, metric key sets) is exact — a missing point or column is a
    failure, never a tolerance question;
  * integer-valued cells and metrics ("shape/count metrics") are exact
    unless NAME has an explicit --tol;
  * float-valued cells and metrics compare within the tolerance for their
    column/metric name (or --default-float-tol);
  * wall_ms and the scenario digest are advisory: reported, never fatal
    (the digest hashes the formatted rows, so it only drifts when some
    tolerated float did).

Exit status: 0 clean, 1 on any gated difference, 2 on usage errors.
"""

import argparse
import fnmatch
import json
import sys
from pathlib import Path


def parse_args(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline", type=Path)
    ap.add_argument("candidate", type=Path)
    ap.add_argument("--tol", action="append", default=[], metavar="NAME=REL")
    ap.add_argument("--default-float-tol", type=float, default=0.0, metavar="REL")
    args = ap.parse_args(argv)
    # Built-in tolerances for values whose exact number is deterministic but
    # sensitive to cross-toolchain float headroom in upstream latencies: the
    # recovery scenario's catch-up clock and transfer byte/chunk counts move
    # when a single tolerated latency shifts a chunk boundary. Both the
    # metric names and the recovery scenario's row-column spellings are
    # listed — row cells are gated by column name. User --tol flags override
    # these (exact names and globs alike: user entries are matched first).
    builtin = {
        "catchup_ms": 0.10,
        "transfer_bytes": 0.10,
        "transfer_chunks": 0.10,
        "xfer_bytes": 0.10,
        "chunks": 0.10,
        # Shard scaling: abort counts and cross-shard tail percentiles ride
        # on retry/backoff interleavings that a latency-headroom shift can
        # reorder; throughput and commit counts stay exactly gated.
        "txn_abort*": 0.25,
        "cross_shard_p*_ms": 0.10,
        # Crypto cost model (crypto_bench / qc_crossover): *_meas_* metrics
        # time real primitives on the current host — advisory by
        # construction, so they get a wide band. Modeled crypto_ns_* values
        # are deterministic given the model constants but scale with them,
        # so a recalibration moves every one in lockstep; 10% headroom keeps
        # small constant tweaks from tripping the gate while a broken charge
        # site (2x, 0x) still fails. Wire byte totals move only when an
        # encoding changes — 2% absorbs a field-width tweak in a rare
        # message without passing a redesigned layout. Order matters:
        # fnmatch globs are first-match-wins, so the meas entries precede
        # the crypto_ns catch-all.
        "crypto_ns_meas*": 5.0,
        "crypto_ns*": 0.10,
        "wire_bytes*": 0.02,
        # Flight-recorder stage sums (trace_breakdown): per-stage millisecond
        # totals over thousands of chains — deterministic, but every chain
        # inherits the upstream latency headroom, so the sums get the same
        # 5% band the latency percentiles do. Chain counts (requests,
        # incomplete) stay integer-exact.
        "stage_*_ms": 0.05,
    }
    tols = {}
    for spec in args.tol:
        name, eq, rel = spec.partition("=")
        if not eq:
            ap.error(f"--tol wants NAME=REL, got '{spec}'")
        tols[name] = float(rel)
    for name, rel in builtin.items():
        tols.setdefault(name, rel)
    return args, tols


def as_number(cell):
    """A row cell parsed as a number, or None (cells are strings in the JSON)."""
    if isinstance(cell, (int, float)):
        return cell
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def is_integral(value):
    return isinstance(value, int) or (isinstance(value, float) and value.is_integer())


class Comparator:
    def __init__(self, tols, default_float_tol):
        self.tols = tols
        self.default_float_tol = default_float_tol
        self.failures = []
        self.notes = []
        # (scenario, params, base ev/s, cand ev/s) — advisory throughput rows.
        self.throughput = []

    def fail(self, where, msg):
        self.failures.append(f"{where}: {msg}")

    def note(self, msg):
        self.notes.append(msg)

    def tolerance_for(self, name, base, cand):
        if name in self.tols:
            return self.tols[name]
        for pattern, rel in self.tols.items():
            if any(ch in pattern for ch in "*?[") and fnmatch.fnmatchcase(
                name, pattern
            ):
                return rel
        if is_integral(base) and is_integral(cand):
            return None  # count metric: exact
        return self.default_float_tol

    def check_value(self, where, name, base, cand):
        """One named numeric value (metric, or numeric row cell)."""
        rel = self.tolerance_for(name, base, cand)
        if rel is None or rel == 0.0:
            if base != cand:
                self.fail(where, f"{name}: {base} != {cand} (exact)")
            return
        scale = max(abs(base), abs(cand))
        if scale > 0 and abs(base - cand) / scale > rel:
            self.fail(
                where,
                f"{name}: {base} vs {cand} drifts "
                f"{abs(base - cand) / scale:.2%} > {rel:.2%}",
            )

    def check_cell(self, where, column, base, cand):
        nb, nc = as_number(base), as_number(cand)
        if nb is None or nc is None:
            if base != cand:
                self.fail(where, f"{column}: '{base}' != '{cand}'")
        else:
            self.check_value(where, column, nb, nc)

    def check_table(self, where, columns, base_rows, cand_rows):
        if len(base_rows) != len(cand_rows):
            self.fail(where, f"row count {len(base_rows)} != {len(cand_rows)}")
            return
        for i, (brow, crow) in enumerate(zip(base_rows, cand_rows)):
            if len(brow) != len(crow):
                self.fail(f"{where}[{i}]", f"width {len(brow)} != {len(crow)}")
                continue
            for c, (bcell, ccell) in enumerate(zip(brow, crow)):
                name = columns[c] if c < len(columns) else f"col{c}"
                self.check_cell(f"{where}[{i}]", name, bcell, ccell)

    def check_scenario(self, name, base, cand):
        if base.get("columns") != cand.get("columns"):
            self.fail(name, "column schema differs")
            return
        columns = base.get("columns", [])
        bpoints, cpoints = base.get("points", []), cand.get("points", [])
        if len(bpoints) != len(cpoints):
            self.fail(name, f"point count {len(bpoints)} != {len(cpoints)}")
            return
        for i, (bp, cp) in enumerate(zip(bpoints, cpoints)):
            where = f"{name}.points[{i}]"
            if bp.get("params") != cp.get("params"):
                self.fail(where, f"params {bp.get('params')} != {cp.get('params')}")
                continue
            self.check_table(f"{where}.rows", columns, bp.get("rows", []),
                             cp.get("rows", []))
            bm, cm = bp.get("metrics", {}), cp.get("metrics", {})
            if bm.keys() != cm.keys():
                self.fail(where, f"metric keys {sorted(bm)} != {sorted(cm)}")
            else:
                for key in bm:
                    self.check_value(where, key, bm[key], cm[key])
            bts, cts = bp.get("timeseries", {}), cp.get("timeseries", {})
            if bts.keys() != cts.keys():
                self.fail(where, f"timeseries keys {sorted(bts)} != "
                                 f"{sorted(cts)}")
            else:
                # Gauge series: shape exact, values per-element under the
                # series-name tolerance (integer-valued samples — commit
                # frontiers, queue depths — stay exact like count metrics).
                for key in bts:
                    if len(bts[key]) != len(cts[key]):
                        self.fail(f"{where}.timeseries", f"{key}: sample count "
                                  f"{len(bts[key])} != {len(cts[key])}")
                        continue
                    for j, (bv, cv) in enumerate(zip(bts[key], cts[key])):
                        self.check_value(f"{where}.timeseries[{j}]", key, bv, cv)
            bec, cec = bp.get("event_core", {}), cp.get("event_core", {})
            self.record_throughput(name, bp, cp, bec, cec)
            if bec != cec:
                for key in sorted(set(bec) | set(cec)):
                    if key not in bec or key not in cec:
                        # A key present on only one side is a schema change
                        # (e.g. partitioned points replace the peak_* keys
                        # with "partitions"), not a drifted value: advisory,
                        # so old baselines stay comparable across the
                        # transition instead of tripping an exact 0-vs-N
                        # failure.
                        side = "baseline" if key in bec else "candidate"
                        self.note(f"{where}.event_core: key '{key}' only in "
                                  f"{side} (schema change, advisory)")
                    elif bec.get(key) != cec.get(key):
                        self.check_value(f"{where}.event_core", key,
                                         bec.get(key, 0), cec.get(key, 0))
        bsum, csum = base.get("summary"), cand.get("summary")
        if (bsum is None) != (csum is None):
            self.fail(name, "summary presence differs")
        elif bsum is not None:
            if bsum.get("columns") != csum.get("columns"):
                self.fail(f"{name}.summary", "column schema differs")
            else:
                self.check_table(f"{name}.summary", bsum.get("columns", []),
                                 bsum.get("rows", []), csum.get("rows", []))
        if base.get("digest") != cand.get("digest"):
            self.note(f"{name}: digest differs (advisory; some tolerated "
                      f"float moved)")
        bw, cw = base.get("wall_ms"), cand.get("wall_ms")
        if bw and cw:
            self.note(f"{name}: wall {bw:.0f} ms -> {cw:.0f} ms "
                      f"({(cw - bw) / bw:+.1%}, advisory)")

    def record_throughput(self, name, bp, cp, bec, cec):
        """Collect wall_ms-derived events/sec for the advisory delta table."""
        bw, cw = bp.get("wall_ms"), cp.get("wall_ms")
        bev, cev = bec.get("events_executed", 0), cec.get("events_executed", 0)
        if not (bw and cw and bev and cev):
            return
        params = " ".join(
            f"{k}={v}" for k, v in sorted(bp.get("params", {}).items())
        )
        self.throughput.append(
            (name, params, bev / bw * 1000.0, cev / cw * 1000.0)
        )
        # Partitioned points carry an advisory "parallel" block in the full
        # JSON (per-partition events/sec under the windowed driver); surface
        # it next to the aggregate so partition imbalance is visible in the
        # same diff. Never gated: wall-clock derived.
        cpar = cp.get("parallel") or {}
        per_part = cpar.get("partition_ev_per_sec") or []
        if per_part:
            cells = " ".join(f"p{i}={v:,.0f}" for i, v in enumerate(per_part))
            self.note(f"{name}[{params}]: per-partition ev/s {cells} "
                      f"(lookahead {cpar.get('lookahead_us', 0)} us, "
                      f"{cpar.get('barrier_count', 0)} barriers, advisory)")

    def print_throughput(self):
        """Advisory events/sec table (baseline vs candidate). Wall-clock
        derived, so machine- and load-dependent: never gated, just printed so
        hot-path regressions are visible in the same diff that gates shape."""
        if not self.throughput:
            return
        wide = max(len(f"{n}[{p}]") for n, p, _, _ in self.throughput)
        print("advisory events/sec (events_executed / wall_ms):")
        print(f"  {'point':<{wide}} {'baseline':>12} {'candidate':>12} {'delta':>8}")
        for name, params, bevs, cevs in self.throughput:
            delta = (cevs - bevs) / bevs
            print(f"  {f'{name}[{params}]':<{wide}} {bevs:>12,.0f} "
                  f"{cevs:>12,.0f} {delta:>+8.1%}")


def main(argv):
    args, tols = parse_args(argv)
    cmp = Comparator(tols, args.default_float_tol)

    base_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not base_files:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        return 2
    for base_path in base_files:
        cand_path = args.candidate / base_path.name
        if not cand_path.is_file():
            cmp.fail(base_path.stem, f"missing from {args.candidate}")
            continue
        with open(base_path) as f:
            base = json.load(f)
        with open(cand_path) as f:
            cand = json.load(f)
        cmp.check_scenario(base.get("scenario", base_path.stem), base, cand)
    extra = {p.name for p in args.candidate.glob("BENCH_*.json")} - {
        p.name for p in base_files
    }
    for name in sorted(extra):
        cmp.note(f"{name}: no baseline committed (bench/baselines/), skipped")

    cmp.print_throughput()
    for note in cmp.notes:
        print(f"note: {note}")
    if cmp.failures:
        print(f"\nFAIL: {len(cmp.failures)} gated difference(s)")
        for failure in cmp.failures:
            print(f"  {failure}")
        return 1
    print(f"\nOK: {len(base_files)} scenario file(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
